"""*persistent-array* — reproduced exactly from §IV-B.

"A simple sequential program … It has only one FASE, which consists of a
two-level nested loop.  The inner loop iterates 400 times and writes in
iteration i to the i-th element of an array of integers.  The outer loop
repeats the inner loop 2500 times.  On the tested machine, a cache block
has 64 bytes, i.e. 16 (4-byte) integers.  The inner loop accesses 25
(cache line aligned) or 26 (not cache line aligned) cache blocks."

The analytically known results this workload must reproduce *exactly*
(Table III):

- total persistent stores: 2500 × 400 + 1 = 1 000 001 (the +1 is a final
  completion-flag store);
- Atlas (8-entry table): sequential stores combine 15/16 writes per line
  through spatial locality — flush ratio 1/16 = 0.0625;
- the software cache picks size 26 (the unaligned working set) and the
  ratio collapses to 26 drain flushes + the flag ≈ 0.00003 (LA's bound).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.common.events import Event, FaseBegin, FaseEnd, Store, Work
from repro.common.geometry import CACHE_LINE_SIZE
from repro.workloads.base import BumpAllocator, Workload

INNER_ITERATIONS = 400
OUTER_ITERATIONS = 2500
INT_SIZE = 4


class PersistentArray(Workload):
    """The paper's persistent-array micro-benchmark (sequential)."""

    name = "persistent-array"

    def __init__(
        self,
        inner: int = INNER_ITERATIONS,
        outer: int = OUTER_ITERATIONS,
        aligned: bool = False,
        work_per_store: int = 50,
    ) -> None:
        self.inner = inner
        self.outer = outer
        self.aligned = aligned
        self.work_per_store = work_per_store

    @property
    def total_stores(self) -> int:
        """Persistent stores per run (paper: 1 000 001)."""
        return self.inner * self.outer + 1

    @property
    def working_set_lines(self) -> int:
        """Cache lines the inner loop touches (25 aligned, 26 not)."""
        span = self.inner * INT_SIZE
        if self.aligned:
            return (span + CACHE_LINE_SIZE - 1) // CACHE_LINE_SIZE
        return (span + CACHE_LINE_SIZE - 1) // CACHE_LINE_SIZE + 1

    def streams(self, num_threads: int, seed: int) -> List[Iterator[Event]]:
        if num_threads != 1:
            raise ValueError("persistent-array is a sequential benchmark")
        return [self._stream()]

    def _stream(self) -> Iterator[Event]:
        alloc = BumpAllocator()
        base = alloc.alloc(self.inner * INT_SIZE + CACHE_LINE_SIZE, line_aligned=True)
        if not self.aligned:
            base += CACHE_LINE_SIZE // 2  # straddle one extra line
        flag = alloc.alloc(INT_SIZE, line_aligned=True)
        work = self.work_per_store
        inner = self.inner
        yield FaseBegin()
        for _ in range(self.outer):
            for i in range(inner):
                if work:
                    yield Work(work)
                yield Store(base + i * INT_SIZE, INT_SIZE)
        yield Store(flag, INT_SIZE, value=1)  # completion flag: the +1 store
        yield FaseEnd()
