"""Workload protocol and shared building blocks."""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.common.errors import ConfigurationError
from repro.common.events import Event, FaseBegin, FaseEnd, Store
from repro.common.geometry import CACHE_LINE_SIZE, align_up
from repro.nvram.memory import NVRAM_BASE


class Workload:
    """Base class for workloads.

    A workload produces one event stream per simulated thread.  Streams
    must be independent iterators (the machine interleaves them), and a
    workload instance must be reusable: each ``streams`` call starts a
    fresh logical execution.
    """

    name = "abstract"

    def streams(self, num_threads: int, seed: int) -> List[Iterator[Event]]:
        """Return ``num_threads`` independent event iterators."""
        raise NotImplementedError

    def supports_threads(self, num_threads: int) -> bool:
        """Whether the workload can be partitioned over this many threads."""
        return num_threads == 1

    def store_threads(self, num_threads: int) -> int:
        """How many of the threads actually issue persistent stores.

        Most workloads partition stores across all threads; MVCC-style
        workloads (MDB) have a single writer, so per-thread sampling
        bursts must be sized against the writer's stream, not an even
        split.
        """
        return num_threads


class BumpAllocator:
    """A trivial persistent-heap allocator for workload data structures.

    Real allocation policy is irrelevant to flush behaviour; what matters
    is that distinct objects land on distinct, deterministic addresses in
    the persistence domain.  Allocations can be line-aligned so that one
    node maps to one cache line (how the micro-benchmarks lay out nodes).
    """

    __slots__ = ("next_addr",)

    def __init__(self, base: int = NVRAM_BASE) -> None:
        if base < NVRAM_BASE:
            raise ConfigurationError("persistent allocations must be in NVRAM")
        self.next_addr = base

    def alloc(self, nbytes: int, line_aligned: bool = False) -> int:
        """Reserve ``nbytes``; return the base address."""
        if nbytes <= 0:
            raise ConfigurationError(f"allocation size must be positive: {nbytes}")
        if line_aligned:
            self.next_addr = align_up(self.next_addr, CACHE_LINE_SIZE)
        addr = self.next_addr
        self.next_addr += nbytes
        return addr

    def alloc_lines(self, nlines: int) -> int:
        """Reserve ``nlines`` whole cache lines; return the base address."""
        return self.alloc(nlines * CACHE_LINE_SIZE, line_aligned=True)


class TraceWorkload(Workload):
    """Replay pre-computed per-thread write traces as store events.

    Used by tests and by trace-level experiments: each per-thread trace
    is a sequence of ``(line, fase_id)`` records; consecutive runs of the
    same fase id are bracketed with ``FaseBegin``/``FaseEnd``, and
    ``fase_id == -1`` emits bare stores.
    """

    def __init__(self, per_thread_traces: Sequence, name: str = "trace") -> None:
        self.name = name
        self._traces = list(per_thread_traces)

    def supports_threads(self, num_threads: int) -> bool:
        return num_threads == len(self._traces)

    def streams(self, num_threads: int, seed: int) -> List[Iterator[Event]]:
        if num_threads != len(self._traces):
            raise ConfigurationError(
                f"trace workload has {len(self._traces)} threads, "
                f"{num_threads} requested"
            )
        return [self._replay(trace) for trace in self._traces]

    @staticmethod
    def _replay(trace) -> Iterator[Event]:
        lines = trace.lines
        fids = trace.fase_ids
        # Traces recorded from the machine carry real NVRAM line ids;
        # synthetic traces often use small ids starting at 0.  Shift the
        # latter into the persistence domain so replayed stores are
        # persistent (a constant shift preserves the flush pattern).
        shift = 0
        if len(lines) and int(lines.max()) * CACHE_LINE_SIZE < NVRAM_BASE:
            shift = NVRAM_BASE // CACHE_LINE_SIZE
        current = None
        for i in range(len(lines)):
            fid = int(fids[i])
            if fid != current:
                if current is not None and current != -1:
                    yield FaseEnd()
                if fid != -1:
                    yield FaseBegin()
                current = fid
            yield Store((int(lines[i]) + shift) * CACHE_LINE_SIZE, 8)
        if current is not None and current != -1:
            yield FaseEnd()


class ComposedWorkload(Workload):
    """Run several workloads back to back on the same threads.

    Useful for phase-change studies: a program whose write locality
    shifts mid-run (e.g. a small-tile phase followed by a wide-sweep
    phase) exercises periodic re-adaptation, which one-shot sampling
    cannot follow.
    """

    def __init__(self, parts: Sequence[Workload], name: str = "composed") -> None:
        if not parts:
            raise ConfigurationError("ComposedWorkload needs at least one part")
        self.parts = list(parts)
        self.name = name

    def supports_threads(self, num_threads: int) -> bool:
        return all(p.supports_threads(num_threads) for p in self.parts)

    def store_threads(self, num_threads: int) -> int:
        return max(p.store_threads(num_threads) for p in self.parts)

    def streams(self, num_threads: int, seed: int) -> List[Iterator[Event]]:
        per_part = [p.streams(num_threads, seed) for p in self.parts]

        def chain(tid: int) -> Iterator[Event]:
            for part_streams in per_part:
                yield from part_streams[tid]

        return [chain(t) for t in range(num_threads)]
