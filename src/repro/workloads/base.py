"""Workload protocol and shared building blocks."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.common.events import (
    Event,
    EventBatch,
    FaseBegin,
    FaseEnd,
    Store,
)
from repro.common.geometry import CACHE_LINE_SIZE, align_up
from repro.nvram.memory import NVRAM_BASE


class Workload:
    """Base class for workloads.

    A workload produces one event stream per simulated thread.  Streams
    must be independent iterators (the machine interleaves them), and a
    workload instance must be reusable: each ``streams`` call starts a
    fresh logical execution.

    Workloads on hot experiment paths should additionally implement
    :meth:`batch_streams`, emitting the *same* event sequence as compact
    :class:`~repro.common.events.EventBatch` columns; the machine then
    executes them on its allocation-free batch loop.  The two encodings
    must stay equivalent — the batch path is an optimisation, never a
    semantic fork.
    """

    name = "abstract"

    def streams(self, num_threads: int, seed: int) -> List[Iterator[Event]]:
        """Return ``num_threads`` independent event iterators."""
        raise NotImplementedError

    def batch_streams(
        self, num_threads: int, seed: int
    ) -> Optional[List[Iterator[EventBatch]]]:
        """Return per-thread :class:`EventBatch` iterators, or ``None``.

        ``None`` (the default) means the workload has no native batch
        emitter and the machine falls back to :meth:`streams`.
        """
        return None

    def supports_threads(self, num_threads: int) -> bool:
        """Whether the workload can be partitioned over this many threads."""
        return num_threads == 1

    def store_threads(self, num_threads: int) -> int:
        """How many of the threads actually issue persistent stores.

        Most workloads partition stores across all threads; MVCC-style
        workloads (MDB) have a single writer, so per-thread sampling
        bursts must be sized against the writer's stream, not an even
        split.
        """
        return num_threads


class BatchCachingWorkload(Workload):
    """Memoize a workload's materialized batch streams across runs.

    Experiment pipelines replay the same ``(workload, threads, seed)``
    event sequence once per technique — five times for a Table III row.
    Generators must re-emit the sequence every time; batches are plain
    data, so they can be built once and re-read.  This wrapper
    materializes the wrapped workload's ``batch_streams`` into lists and
    serves iterators over them on repeat calls, keeping at most
    ``max_entries`` ``(threads, seed)`` materializations (FIFO) so
    thread-sweep grids do not accumulate unbounded batch data.

    Everything else — ``streams``, ``store_threads``, workload-specific
    attributes — delegates to the wrapped workload.
    """

    def __init__(self, inner: Workload, max_entries: int = 4) -> None:
        if max_entries < 1:
            raise ConfigurationError("max_entries must be >= 1")
        self._inner = inner
        self._max_entries = max_entries
        self._materialized: dict = {}

    @property
    def name(self) -> str:
        return self._inner.name

    def __getattr__(self, attr: str):
        return getattr(self._inner, attr)

    def streams(self, num_threads: int, seed: int) -> List[Iterator[Event]]:
        return self._inner.streams(num_threads, seed)

    def supports_threads(self, num_threads: int) -> bool:
        return self._inner.supports_threads(num_threads)

    def store_threads(self, num_threads: int) -> int:
        return self._inner.store_threads(num_threads)

    def batch_streams(
        self, num_threads: int, seed: int
    ) -> Optional[List[Iterator[EventBatch]]]:
        key = (num_threads, seed)
        entry = self._materialized.get(key)
        if entry is None:
            inner_streams = self._inner.batch_streams(num_threads, seed)
            if inner_streams is None:
                return None
            entry = [list(stream) for stream in inner_streams]
            while len(self._materialized) >= self._max_entries:
                self._materialized.pop(next(iter(self._materialized)))
            self._materialized[key] = entry
        return [iter(per_thread) for per_thread in entry]


class PrebuiltBatchWorkload(Workload):
    """Serve already-materialized per-thread :class:`EventBatch` lists.

    The adapter the sharded executor and the shared-memory transport
    feed into ``Machine.run``: a shard's substreams (or batches rebuilt
    from a shared-memory segment) are plain lists of batches, and this
    wraps them in the ``Workload`` protocol without re-deriving anything
    from a generator.  Reusable: every ``batch_streams`` call returns
    fresh iterators over the same lists.
    """

    def __init__(self, name: str, per_thread_batches: Sequence[Sequence[EventBatch]]) -> None:
        self.name = name
        self._batches: List[List[EventBatch]] = [list(b) for b in per_thread_batches]

    def supports_threads(self, num_threads: int) -> bool:
        return num_threads == len(self._batches)

    def _check_threads(self, num_threads: int) -> None:
        if num_threads != len(self._batches):
            raise ConfigurationError(
                f"prebuilt workload has {len(self._batches)} threads, "
                f"{num_threads} requested"
            )

    def batch_streams(
        self, num_threads: int, seed: int
    ) -> List[Iterator[EventBatch]]:
        self._check_threads(num_threads)
        return [iter(batches) for batches in self._batches]

    def streams(self, num_threads: int, seed: int) -> List[Iterator[Event]]:
        from repro.common.events import events_from_batches

        self._check_threads(num_threads)
        return [events_from_batches(iter(b)) for b in self._batches]


class BumpAllocator:
    """A trivial persistent-heap allocator for workload data structures.

    Real allocation policy is irrelevant to flush behaviour; what matters
    is that distinct objects land on distinct, deterministic addresses in
    the persistence domain.  Allocations can be line-aligned so that one
    node maps to one cache line (how the micro-benchmarks lay out nodes).
    """

    __slots__ = ("next_addr",)

    def __init__(self, base: int = NVRAM_BASE) -> None:
        if base < NVRAM_BASE:
            raise ConfigurationError("persistent allocations must be in NVRAM")
        self.next_addr = base

    def alloc(self, nbytes: int, line_aligned: bool = False) -> int:
        """Reserve ``nbytes``; return the base address."""
        if nbytes <= 0:
            raise ConfigurationError(f"allocation size must be positive: {nbytes}")
        if line_aligned:
            self.next_addr = align_up(self.next_addr, CACHE_LINE_SIZE)
        addr = self.next_addr
        self.next_addr += nbytes
        return addr

    def alloc_lines(self, nlines: int) -> int:
        """Reserve ``nlines`` whole cache lines; return the base address."""
        return self.alloc(nlines * CACHE_LINE_SIZE, line_aligned=True)


class TraceWorkload(Workload):
    """Replay pre-computed per-thread write traces as store events.

    Used by tests and by trace-level experiments: each per-thread trace
    is a sequence of ``(line, fase_id)`` records; consecutive runs of the
    same fase id are bracketed with ``FaseBegin``/``FaseEnd``, and
    ``fase_id == -1`` emits bare stores.
    """

    def __init__(self, per_thread_traces: Sequence, name: str = "trace") -> None:
        self.name = name
        self._traces = list(per_thread_traces)

    def supports_threads(self, num_threads: int) -> bool:
        return num_threads == len(self._traces)

    def streams(self, num_threads: int, seed: int) -> List[Iterator[Event]]:
        if num_threads != len(self._traces):
            raise ConfigurationError(
                f"trace workload has {len(self._traces)} threads, "
                f"{num_threads} requested"
            )
        return [self._replay(trace) for trace in self._traces]

    def batch_streams(
        self, num_threads: int, seed: int
    ) -> List[Iterator[EventBatch]]:
        if num_threads != len(self._traces):
            raise ConfigurationError(
                f"trace workload has {len(self._traces)} threads, "
                f"{num_threads} requested"
            )
        return [self._replay_batches(trace) for trace in self._traces]

    @staticmethod
    def _trace_shift(lines) -> int:
        # Traces recorded from the machine carry real NVRAM line ids;
        # synthetic traces often use small ids starting at 0.  Shift the
        # latter into the persistence domain so replayed stores are
        # persistent (a constant shift preserves the flush pattern).
        if len(lines) and int(lines.max()) * CACHE_LINE_SIZE < NVRAM_BASE:
            return NVRAM_BASE // CACHE_LINE_SIZE
        return 0

    @classmethod
    def _replay(cls, trace) -> Iterator[Event]:
        lines = trace.lines
        fids = trace.fase_ids
        shift = cls._trace_shift(lines)
        current = None
        for i in range(len(lines)):
            fid = int(fids[i])
            if fid != current:
                if current is not None and current != -1:
                    yield FaseEnd()
                if fid != -1:
                    yield FaseBegin()
                current = fid
            yield Store((int(lines[i]) + shift) * CACHE_LINE_SIZE, 8)
        if current is not None and current != -1:
            yield FaseEnd()

    @classmethod
    def _replay_batches(cls, trace, chunk: int = 4096) -> Iterator[EventBatch]:
        """Batched mirror of :meth:`_replay` (same event sequence)."""
        lines = trace.lines.tolist()
        fids = trace.fase_ids.tolist()
        shift = cls._trace_shift(trace.lines)
        line_size = CACHE_LINE_SIZE
        batch = EventBatch()
        current = None
        for i in range(len(lines)):
            fid = fids[i]
            if fid != current:
                if current is not None and current != -1:
                    batch.append_fase_end()
                if fid != -1:
                    batch.append_fase_begin()
                current = fid
            batch.append_store((lines[i] + shift) * line_size, 8)
            # FASE state carries across batches, so splits can fall anywhere.
            if len(batch.kinds) >= chunk:
                yield batch
                batch = EventBatch()
        if current is not None and current != -1:
            batch.append_fase_end()
        if len(batch.kinds):
            yield batch


class ComposedWorkload(Workload):
    """Run several workloads back to back on the same threads.

    Useful for phase-change studies: a program whose write locality
    shifts mid-run (e.g. a small-tile phase followed by a wide-sweep
    phase) exercises periodic re-adaptation, which one-shot sampling
    cannot follow.
    """

    def __init__(self, parts: Sequence[Workload], name: str = "composed") -> None:
        if not parts:
            raise ConfigurationError("ComposedWorkload needs at least one part")
        self.parts = list(parts)
        self.name = name

    def supports_threads(self, num_threads: int) -> bool:
        return all(p.supports_threads(num_threads) for p in self.parts)

    def store_threads(self, num_threads: int) -> int:
        return max(p.store_threads(num_threads) for p in self.parts)

    def streams(self, num_threads: int, seed: int) -> List[Iterator[Event]]:
        per_part = [p.streams(num_threads, seed) for p in self.parts]

        def chain(tid: int) -> Iterator[Event]:
            for part_streams in per_part:
                yield from part_streams[tid]

        return [chain(t) for t in range(num_threads)]

    def batch_streams(
        self, num_threads: int, seed: int
    ) -> Optional[List[Iterator[EventBatch]]]:
        """Chain the parts' batch streams; ``None`` unless every part
        has a native emitter (mixing encodings would silently change the
        machine's execution path mid-run)."""
        per_part = [p.batch_streams(num_threads, seed) for p in self.parts]
        if any(streams is None for streams in per_part):
            return None

        def chain(tid: int) -> Iterator[EventBatch]:
            for part_streams in per_part:
                yield from part_streams[tid]

        return [chain(t) for t in range(num_threads)]
