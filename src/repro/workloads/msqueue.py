"""The *queue* micro-benchmark: Michael & Scott's two-lock queue (§IV-B).

"The queue is a multithreaded benchmark we wrote based on the blocking
algorithm of Michael and Scott."  The two-lock (blocking) variant keeps a
dummy node; enqueue appends under the tail lock, dequeue advances the
head pointer under the head lock.  The locks are transient (DRAM) — only
the queue's nodes and anchor pointers are persistent.

Persistent stores per operation, each operation one FASE:

- enqueue: node.value, node.next, pred.next, tail pointer — 4 stores;
- dequeue: head pointer — 1 store.

Nodes are 16 bytes (value + next), four to a cache line, exactly the
M&S node layout; consecutive allocations pack lines, so the new node
and its predecessor usually share one — which is how the combined ratio
lands near the paper's 0.625 (5 stores over ~3 distinct lines per
enqueue/dequeue pair).

FASEs are single operations, so no technique can combine beyond the
in-FASE reuse: LA = AT = SC, as in Table III's queue row (SC merely
chooses the smallest size among the optimal ones).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, List

from repro.common.events import Event, FaseBegin, FaseEnd, Load, Store, Work
from repro.workloads.base import BumpAllocator, Workload

DEFAULT_OPERATIONS = 100_000

_VALUE_OFF = 0
_NEXT_OFF = 8


class QueueWorkload(Workload):
    """Alternating enqueue/dequeue pairs on a two-lock M&S queue."""

    name = "queue"

    def __init__(self, operations: int = DEFAULT_OPERATIONS) -> None:
        # `operations` counts enqueue+dequeue pairs per thread group.
        self.operations = operations

    def supports_threads(self, num_threads: int) -> bool:
        return num_threads >= 1

    def streams(self, num_threads: int, seed: int) -> List[Iterator[Event]]:
        alloc = BumpAllocator()
        per_thread = [self.operations // num_threads] * num_threads
        per_thread[0] += self.operations - sum(per_thread)
        return [
            self._stream(per_thread[t], alloc) for t in range(num_threads)
        ]

    def _stream(self, pairs: int, alloc: BumpAllocator) -> Iterator[Event]:
        head_addr = alloc.alloc_lines(1)
        tail_addr = alloc.alloc_lines(1)
        dummy = alloc.alloc(16, line_aligned=True)
        nodes = deque([dummy])
        tail_node = dummy
        # Initialise the queue (one setup FASE: dummy node + anchors).
        yield FaseBegin()
        yield Store(dummy + _NEXT_OFF, 8, value=None)
        yield Store(head_addr, 8, value=dummy)
        yield Store(tail_addr, 8, value=dummy)
        yield FaseEnd()
        for i in range(pairs):
            # -- enqueue ------------------------------------------------
            node = alloc.alloc(16)
            yield FaseBegin()
            yield Work(170)                     # lock, pointer math, instrumentation
            yield Store(node + _VALUE_OFF, 8, value=i)
            yield Store(node + _NEXT_OFF, 8, value=None)
            yield Store(tail_node + _NEXT_OFF, 8, value=node)
            yield Store(tail_addr, 8, value=node)
            yield FaseEnd()
            nodes.append(node)
            tail_node = node
            # -- dequeue ------------------------------------------------
            yield FaseBegin()
            yield Work(60)
            front = nodes[0]
            yield Load(front + _NEXT_OFF, 8)    # read successor
            yield Store(head_addr, 8, value=nodes[1] if len(nodes) > 1 else None)
            yield FaseEnd()
            nodes.popleft()
