"""Running workload × technique × threads, with profiling and caching.

One :class:`Harness` instance owns a result cache, so a table that needs
the same (workload, technique, threads) run as a figure pays for it
once.  Runs are deterministic given ``(scale, seed, timing)``.

Technique plumbing the paper's §IV-A implies:

- ``SC`` (online) gets a burst length proportional to the run, as the
  paper's 64 M-write burst is to its full-scale runs (~20 %), so the
  pre-adaptation phase and the analysis overhead stay visible at any
  scale;
- ``SC-offline`` needs the profiling pass: a BEST run with trace
  recording, whole-trace MRC, knee selection — "the offline choice is
  the best single cache size for the whole execution".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cache.adaptive import AdaptiveConfig
from repro.cache.policies import TECHNIQUES, make_factory
from repro.common.errors import ConfigurationError
from repro.locality.knee import SelectionPolicy, select_cache_size
from repro.locality.mrc import MissRatioCurve, mrc_from_trace
from repro.locality.trace import WriteTrace
from repro.nvram.machine import Machine, MachineConfig
from repro.nvram.stats import RunResult
from repro.nvram.timing import DEFAULT_TIMING, TimingModel
from repro.workloads.registry import WORKLOAD_NAMES, get_workload

#: Fraction of a run's stores one online sampling burst covers (the
#: paper's burst is ~20% of its full-scale store counts; we use a bit
#: less so the pre-adaptation phase -- default size 8 before the knee is
#: known -- does not dominate scaled-down runs).
BURST_FRACTION = 0.06
MIN_BURST = 768
MAX_BURST = 16_384


@dataclass(frozen=True)
class HarnessConfig:
    """Knobs shared by every run of one harness instance."""

    scale: float = 1.0          # workload problem-size multiplier
    seed: int = 0
    timing: TimingModel = DEFAULT_TIMING
    l1_capacity_lines: int = 512
    l1_ways: int = 8
    selection: SelectionPolicy = SelectionPolicy()

    def machine_config(self) -> MachineConfig:
        """The machine configuration used for every run."""
        return MachineConfig(
            timing=self.timing,
            l1_capacity_lines=self.l1_capacity_lines,
            l1_ways=self.l1_ways,
        )


class Harness:
    """Cached experiment runner (see module docstring)."""

    def __init__(self, config: Optional[HarnessConfig] = None) -> None:
        self.config = config or HarnessConfig()
        self._runs: Dict[Tuple[str, str, int], RunResult] = {}
        self._profiles: Dict[Tuple[str, int], RunResult] = {}
        self._workloads: Dict[str, object] = {}

    # ------------------------------------------------------------------

    def workload(self, name: str):
        """The (cached) workload object for a Table III name."""
        wl = self._workloads.get(name)
        if wl is None:
            wl = get_workload(name, scale=self.config.scale)
            self._workloads[name] = wl
        return wl

    def profile(self, name: str, threads: int = 1) -> RunResult:
        """The trace-recording BEST run used for offline analysis."""
        key = (name, threads)
        result = self._profiles.get(key)
        if result is None:
            machine = Machine(self.config.machine_config())
            result = machine.run(
                self.workload(name),
                make_factory("BEST"),
                num_threads=threads,
                seed=self.config.seed,
                record_traces=True,
            )
            self._profiles[key] = result
        return result

    def trace(self, name: str, thread: int = 0, threads: int = 1) -> WriteTrace:
        """A recorded per-thread persistent-write trace."""
        return self.profile(name, threads).traces[thread]

    def offline_mrc(self, name: str) -> MissRatioCurve:
        """The whole-trace (offline) MRC of the single-thread run."""
        return mrc_from_trace(self.trace(name))

    def offline_size(self, name: str) -> int:
        """The profiled best cache size (drives SC-offline)."""
        return select_cache_size(self.offline_mrc(name), self.config.selection)

    def burst_length(self, name: str, threads: int = 1) -> int:
        """Online sampling burst, proportional to each thread's stores.

        Sampling is per thread (each software cache adapts on its own
        MRC, §III-C), so the burst shrinks with the thread count to stay
        a fixed fraction of what one thread actually writes.
        """
        n = self.profile(name).persistent_stores
        writers = self.workload(name).store_threads(threads)
        per_thread = n / max(1, writers)
        return max(MIN_BURST, min(MAX_BURST, int(per_thread * BURST_FRACTION)))

    # ------------------------------------------------------------------

    def run(self, name: str, technique: str, threads: int = 1) -> RunResult:
        """Execute (or fetch) one workload × technique × threads run."""
        if technique not in TECHNIQUES:
            raise ConfigurationError(
                f"unknown technique {technique!r}; expected one of {TECHNIQUES}"
            )
        key = (name, technique, threads)
        result = self._runs.get(key)
        if result is not None:
            return result
        factory_kwargs = {}
        if technique == "SC-offline":
            factory_kwargs["sc_fixed_size"] = self.offline_size(name)
        elif technique == "SC":
            burst = self.burst_length(name, threads)
            writers = self.workload(name).store_threads(threads)
            per_thread = self.profile(name).persistent_stores / max(1, writers)
            # Warm-up skip: sample past the start-up transient, but only
            # when the thread's stream is long enough to afford it.
            skip = burst if per_thread >= 8 * burst else 0
            factory_kwargs["adaptive_config"] = AdaptiveConfig(
                burst_length=burst,
                initial_skip=skip,
                selection=self.config.selection,
            )
        machine = Machine(self.config.machine_config())
        result = machine.run(
            self.workload(name),
            make_factory(technique, **factory_kwargs),
            num_threads=threads,
            seed=self.config.seed,
        )
        self._runs[key] = result
        return result

    def run_techniques(
        self, name: str, techniques: List[str], threads: int = 1
    ) -> Dict[str, RunResult]:
        """Run several techniques on one workload."""
        return {t: self.run(name, t, threads) for t in techniques}

    # ------------------------------------------------------------------

    @staticmethod
    def all_workloads() -> Tuple[str, ...]:
        """Table III's 12 applications, in table order."""
        return WORKLOAD_NAMES

    @staticmethod
    def splash2_workloads() -> Tuple[str, ...]:
        """The seven SPLASH2 programs."""
        return (
            "barnes",
            "fmm",
            "ocean",
            "raytrace",
            "volrend",
            "water-nsquared",
            "water-spatial",
        )
