"""Running workload × technique × threads, with profiling and caching.

One :class:`Harness` instance owns a result cache, so a table that needs
the same (workload, technique, threads) run as a figure pays for it
once.  Runs are deterministic given ``(scale, seed, timing)``.

Technique plumbing the paper's §IV-A implies:

- ``SC`` (online) gets a burst length proportional to the run, as the
  paper's 64 M-write burst is to its full-scale runs (~20 %), so the
  pre-adaptation phase and the analysis overhead stay visible at any
  scale;
- ``SC-offline`` needs the profiling pass: a BEST run with trace
  recording, whole-trace MRC, knee selection — "the offline choice is
  the best single cache size for the whole execution".

Execution is factored so one grid cell is a *pure function* of
``(HarnessConfig, name, technique, threads, ProfileSummary)`` —
:func:`execute_cell` — which is what lets ``run_grid`` fan cells out to
worker processes (``repro.experiments.parallel``) and lets results be
memoized on disk (``repro.experiments.cache``) without any behavioural
difference from the sequential in-process path.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cache.adaptive import AdaptiveConfig
from repro.cache.spec import TechniqueSpec, technique_factory
from repro.common.errors import ConfigurationError
from repro.experiments.cache import ResultCache
from repro.locality.knee import SelectionPolicy, select_cache_size
from repro.locality.mrc import MissRatioCurve, mrc_from_trace
from repro.locality.trace import WriteTrace
from repro.nvram.machine import Machine, MachineConfig
from repro.nvram.stats import RunResult
from repro.nvram.timing import DEFAULT_TIMING, TimingModel
from repro.workloads.base import BatchCachingWorkload, Workload
from repro.workloads.registry import WORKLOAD_NAMES, get_workload

#: Fraction of a run's stores one online sampling burst covers (the
#: paper's burst is ~20% of its full-scale store counts; we use a bit
#: less so the pre-adaptation phase -- default size 8 before the knee is
#: known -- does not dominate scaled-down runs).
BURST_FRACTION = 0.06
MIN_BURST = 768
MAX_BURST = 16_384

#: One grid coordinate: (workload name, technique, thread count).
Cell = Tuple[str, str, int]


@dataclass(frozen=True)
class HarnessConfig:
    """Knobs shared by every run of one harness instance."""

    scale: float = 1.0          # workload problem-size multiplier
    seed: int = 0
    timing: TimingModel = DEFAULT_TIMING
    l1_capacity_lines: int = 512
    l1_ways: int = 8
    selection: SelectionPolicy = SelectionPolicy()

    def machine_config(self) -> MachineConfig:
        """The machine configuration used for every run."""
        return MachineConfig(
            timing=self.timing,
            l1_capacity_lines=self.l1_capacity_lines,
            l1_ways=self.l1_ways,
        )


@dataclass(frozen=True)
class ProfileSummary:
    """What SC/SC-offline need from the profiling pass, and nothing more.

    The full profile run carries recorded traces (numpy arrays, large,
    not worth shipping between processes or to disk); these two integers
    are the only facts technique configuration actually consumes, so
    they are what crosses process and cache boundaries.
    """

    persistent_stores: int    # single-thread BEST run, total stores
    offline_size: int         # knee of the whole-trace MRC


def make_workload(config: HarnessConfig, name: str) -> Workload:
    """Build the (batch-caching) workload object for one Table III name."""
    return BatchCachingWorkload(get_workload(name, scale=config.scale))


def sc_factory_kwargs(
    config: HarnessConfig,
    workload: Workload,
    technique: str,
    threads: int,
    summary: Optional[ProfileSummary],
) -> Dict[str, object]:
    """Technique-factory keyword arguments for one grid cell.

    ``technique`` may be any spec string; the *base* decides the
    plumbing.  ``SC`` and ``SC-offline`` bases are the only ones that
    need profile facts; for them ``summary`` is required.
    """
    base = TechniqueSpec.parse(technique).base
    if base not in ("SC", "SC-offline"):
        return {}
    if summary is None:
        raise ConfigurationError(
            f"{technique} needs a ProfileSummary (burst/offline sizing)"
        )
    if base == "SC-offline":
        return {"sc_fixed_size": summary.offline_size}
    # SC: online sampling burst, proportional to each thread's stores.
    # Sampling is per thread (each software cache adapts on its own MRC,
    # §III-C), so the burst shrinks with the thread count to stay a
    # fixed fraction of what one thread actually writes.
    writers = workload.store_threads(threads)
    per_thread = summary.persistent_stores / max(1, writers)
    burst = max(MIN_BURST, min(MAX_BURST, int(per_thread * BURST_FRACTION)))
    # Warm-up skip: sample past the start-up transient, but only when
    # the thread's stream is long enough to afford it.
    skip = burst if per_thread >= 8 * burst else 0
    return {
        "adaptive_config": AdaptiveConfig(
            burst_length=burst,
            initial_skip=skip,
            selection=config.selection,
        )
    }


def execute_cell(
    config: HarnessConfig,
    name: str,
    technique: str,
    threads: int,
    summary: Optional[ProfileSummary] = None,
    workload: Optional[Workload] = None,
) -> RunResult:
    """Execute one grid cell from scratch — no caches involved.

    A pure function of its arguments (every run seeds from
    ``config.seed``), so a worker process computing a cell produces the
    bit-identical result the sequential harness would.  ``workload`` may
    be passed to reuse an already-built (batch-caching) instance.
    """
    spec = TechniqueSpec.parse(technique)  # one parser, one error text
    if workload is None:
        workload = make_workload(config, name)
    factory_kwargs = sc_factory_kwargs(config, workload, technique, threads, summary)
    machine = Machine(config.machine_config())
    return machine.run(
        workload,
        technique_factory(spec, **factory_kwargs),
        num_threads=threads,
        seed=config.seed,
    )


def record_grid(
    harness: "Harness",
    results: Dict[Cell, RunResult],
    *,
    jobs: int,
    wall_s: float,
) -> None:
    """Append one ``grid`` ledger record for a completed batch.

    The spec is the harness configuration plus the (sorted) cell list —
    everything the grid's outcome depends on — so re-running the same
    grid extends one timeline.  ``jobs`` is environment-flavoured
    scheduling detail (it cannot change results) and goes under
    ``extra``.  Shared by the sequential path and ``run_grid_parallel``;
    best-effort like every ledger write.
    """
    if not results:
        return
    from repro.obs.ledger import grid_cells_payload, record_run

    rows, totals = grid_cells_payload(results)
    record_run(
        "grid",
        {
            "config": dataclasses.asdict(harness.config),
            "cells": [list(cell) for cell in sorted(results)],
        },
        totals,
        wall_s=wall_s,
        extra={"cells": rows, "jobs": jobs},
    )


class Harness:
    """Cached experiment runner (see module docstring).

    ``cache_dir`` enables the on-disk result cache: completed cells and
    profile summaries are persisted as JSON keyed by the full
    configuration, so repeat invocations (and parallel workers) skip
    simulation entirely.
    """

    def __init__(
        self,
        config: Optional[HarnessConfig] = None,
        cache_dir: Optional[str] = None,
    ) -> None:
        self.config = config or HarnessConfig()
        self.cache_dir = cache_dir
        self._disk = ResultCache(cache_dir) if cache_dir else None
        self._runs: Dict[Cell, RunResult] = {}
        self._profiles: Dict[Tuple[str, int], RunResult] = {}
        self._summaries: Dict[str, ProfileSummary] = {}
        self._workloads: Dict[str, Workload] = {}

    # ------------------------------------------------------------------

    def workload(self, name: str) -> Workload:
        """The (cached, batch-caching) workload object for a name."""
        wl = self._workloads.get(name)
        if wl is None:
            wl = make_workload(self.config, name)
            self._workloads[name] = wl
        return wl

    def profile(self, name: str, threads: int = 1) -> RunResult:
        """The trace-recording BEST run used for offline analysis.

        Kept in memory only: recorded traces are large and the disk
        cache stores the distilled :class:`ProfileSummary` instead.
        """
        key = (name, threads)
        result = self._profiles.get(key)
        if result is None:
            machine = Machine(self.config.machine_config())
            result = machine.run(
                self.workload(name),
                technique_factory("BEST"),
                num_threads=threads,
                seed=self.config.seed,
                record_traces=True,
            )
            self._profiles[key] = result
        return result

    def profile_summary(self, name: str) -> ProfileSummary:
        """The distilled profile facts driving SC/SC-offline sizing."""
        summary = self._summaries.get(name)
        if summary is not None:
            return summary
        disk_key = None
        if self._disk is not None:
            disk_key = ResultCache.key(self.config, "profile_summary", name=name)
            data = self._disk.get(disk_key)
            if data is not None:
                summary = ProfileSummary(**data)
                self._summaries[name] = summary
                return summary
        result = self.profile(name)
        summary = ProfileSummary(
            persistent_stores=result.persistent_stores,
            offline_size=select_cache_size(
                mrc_from_trace(result.traces[0]), self.config.selection
            ),
        )
        self._summaries[name] = summary
        if self._disk is not None:
            self._disk.put(disk_key, dataclasses.asdict(summary))
        return summary

    def preload_summaries(self, summaries: Dict[str, ProfileSummary]) -> None:
        """Adopt summaries computed elsewhere (parallel phase 1)."""
        self._summaries.update(summaries)

    def trace(self, name: str, thread: int = 0, threads: int = 1) -> WriteTrace:
        """A recorded per-thread persistent-write trace."""
        return self.profile(name, threads).traces[thread]

    def offline_mrc(self, name: str) -> MissRatioCurve:
        """The whole-trace (offline) MRC of the single-thread run."""
        return mrc_from_trace(self.trace(name))

    def offline_size(self, name: str) -> int:
        """The profiled best cache size (drives SC-offline)."""
        return self.profile_summary(name).offline_size

    def burst_length(self, name: str, threads: int = 1) -> int:
        """Online sampling burst for one thread of ``name`` (see
        :func:`sc_factory_kwargs` for the sizing rule)."""
        n = self.profile_summary(name).persistent_stores
        writers = self.workload(name).store_threads(threads)
        per_thread = n / max(1, writers)
        return max(MIN_BURST, min(MAX_BURST, int(per_thread * BURST_FRACTION)))

    # ------------------------------------------------------------------

    def run(self, name: str, technique: str, threads: int = 1) -> RunResult:
        """Execute (or fetch) one workload × technique × threads run.

        ``technique`` may be any spec string (``"SC"``,
        ``"SC+clean+victim:16"``, ...); it is canonicalized through the
        one parser, so e.g. ``"SC+clean"`` and ``"SC+clean:4"`` share a
        cache entry — and a bad spec fails here with the same error as
        every other entry point.
        """
        spec = TechniqueSpec.parse(technique)
        technique = str(spec)
        key = (name, technique, threads)
        result = self._runs.get(key)
        if result is not None:
            return result
        disk_key = None
        if self._disk is not None:
            disk_key = ResultCache.key(
                self.config, "run", name=name, technique=technique, threads=threads
            )
            data = self._disk.get(disk_key)
            if data is not None:
                try:
                    result = RunResult.from_dict(data)
                except ConfigurationError:
                    # Stale entry from another schema version: treat as
                    # a miss and recompute (the put below overwrites it).
                    result = None
                if result is not None:
                    self._runs[key] = result
                    return result
        summary = (
            self.profile_summary(name)
            if spec.base in ("SC", "SC-offline")
            else None
        )
        result = execute_cell(
            self.config, name, technique, threads,
            summary=summary, workload=self.workload(name),
        )
        self._runs[key] = result
        if self._disk is not None:
            self._disk.put(disk_key, result.to_dict())
        return result

    def run_techniques(
        self, name: str, techniques: List[str], threads: int = 1
    ) -> Dict[str, RunResult]:
        """Run several techniques on one workload."""
        return {t: self.run(name, t, threads) for t in techniques}

    def run_grid(
        self, cells: Iterable[Cell], jobs: int = 1, progress=None,
        telemetry=None,
    ) -> Dict[Cell, RunResult]:
        """Execute a batch of cells, optionally across worker processes.

        With ``jobs > 1`` the cells fan out over a process pool (see
        ``repro.experiments.parallel``); results are identical to the
        sequential path because every cell is a pure function of the
        configuration.  Either way, completed cells land in this
        harness's in-memory cache, so artifact generators that re-request
        them afterwards get hits.

        ``progress(done, total, cell)``, if given, is invoked after each
        completed cell on both the sequential and parallel paths.  A
        callback declaring a fourth parameter additionally receives the
        cell's metric snapshot
        (:func:`repro.obs.live.snapshot_from_result`) — the richer hook
        the live monitor attaches to.

        ``telemetry`` (:class:`repro.obs.fleet.FleetTelemetry`) attaches
        the fleet bus on the parallel path; the sequential path has no
        fleet and ignores it.
        """
        cells = list(dict.fromkeys(cells))
        if jobs > 1 and len(cells) > 1:
            from repro.experiments.parallel import run_grid_parallel

            return run_grid_parallel(
                self, cells, jobs, progress=progress, telemetry=telemetry
            )
        from repro.obs.live import resolve_grid_progress

        notify = resolve_grid_progress(progress)
        started = time.monotonic()
        results: Dict[Cell, RunResult] = {}
        for cell in cells:
            results[cell] = self.run(*cell)
            if notify is not None:
                notify(len(results), len(cells), cell, results[cell])
        record_grid(self, results, jobs=1, wall_s=time.monotonic() - started)
        return results

    # ------------------------------------------------------------------

    @staticmethod
    def all_workloads() -> Tuple[str, ...]:
        """Table III's 12 applications, in table order."""
        return WORKLOAD_NAMES

    @staticmethod
    def splash2_workloads() -> Tuple[str, ...]:
        """The seven SPLASH2 programs."""
        return (
            "barnes",
            "fmm",
            "ocean",
            "raytrace",
            "volrend",
            "water-nsquared",
            "water-spatial",
        )
