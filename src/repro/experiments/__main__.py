"""Command-line entry point: regenerate any table or figure.

Examples::

    python -m repro.experiments table3
    python -m repro.experiments figure5 --scale 0.3
    python -m repro.experiments all --write EXPERIMENTS.md
    python -m repro.experiments all --jobs 4        # parallel sweep

``--jobs N`` pre-computes the artifact's run grid on N worker processes
(results are bit-identical to the sequential sweep); ``--cache-dir``
persists completed runs as JSON so repeat invocations skip simulation.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.harness import Harness, HarnessConfig
from repro.experiments.report import GENERATORS, generate


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (see module docstring); returns an exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures on the simulator.",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(GENERATORS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload problem-size multiplier (default 1.0)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the run grid (default 1 = in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist run results as JSON under DIR (e.g. .cache)",
    )
    parser.add_argument(
        "--write",
        nargs="?",
        const="EXPERIMENTS.md",
        default=None,
        metavar="PATH",
        help="with 'all': also write the EXPERIMENTS.md report",
    )
    parser.add_argument(
        "--svg",
        default=None,
        metavar="DIR",
        help="also render the figure's chart(s) as SVG into DIR",
    )
    args = parser.parse_args(argv)

    harness = Harness(
        HarnessConfig(scale=args.scale, seed=args.seed),
        cache_dir=args.cache_dir,
    )
    start = time.time()
    if args.jobs > 1:
        from repro.experiments.parallel import grid_for

        cells = grid_for(harness, args.artifact)
        if cells:
            grid_start = time.time()
            harness.run_grid(cells, jobs=args.jobs)
            print(
                f"[grid: {len(cells)} cells on {args.jobs} workers in "
                f"{time.time() - grid_start:.1f}s]",
                file=sys.stderr,
            )
    if args.artifact == "all":
        body = generate(harness, write_path=args.write, svg_dir=args.svg)
        print(body)
    else:
        art = GENERATORS[args.artifact](harness)
        print(art.title)
        print()
        print(art.text)
        if args.svg and args.artifact.startswith("figure"):
            from repro.experiments.plots import write_artifact_svgs

            for path in write_artifact_svgs(art, args.svg):
                print(f"wrote {path}", file=sys.stderr)
    print(f"\n[{time.time() - start:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
