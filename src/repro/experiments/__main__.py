"""Command-line entry point: regenerate any table or figure, or trace a run.

Examples::

    python -m repro.experiments table3
    python -m repro.experiments figure5 --scale 0.3
    python -m repro.experiments all --write EXPERIMENTS.md
    python -m repro.experiments all --jobs 4        # parallel sweep
    python -m repro.experiments run --workload mdb --technique SC \\
        --threads 8 --trace mdb-sc.chrome.json --metrics mdb-sc.metrics.json

``--jobs N`` pre-computes the artifact's run grid on N worker processes
(results are bit-identical to the sequential sweep) with a per-cell
heartbeat on stderr; ``--cache-dir`` persists completed runs as JSON so
repeat invocations skip simulation.

The ``run`` pseudo-artifact executes one ``(workload, technique,
threads)`` cell with the observability layer attached: ``--trace PATH``
writes the structured event trace (a ``.jsonl`` suffix selects JSON
lines, anything else the Chrome ``trace_event`` format — load it in
Perfetto or ``chrome://tracing``; repeatable for both), and
``--metrics PATH`` dumps the sampled metrics registry
(``--metrics-interval`` model cycles between samples).

The ``crashmatrix`` pseudo-artifact runs fault-injection campaigns
(:mod:`repro.faults`) over every ``workload × technique × fault-model``
combination requested, prints the markdown verdict matrix, optionally
writes the JSON matrix with ``--out``, and exits non-zero if any
injected crash violated FASE atomicity — so CI can gate on it::

    python -m repro.experiments crashmatrix --workloads linked-list \\
        --fault-models clean,torn_line --max-sites 128 --out matrix.json

Crash replays are profilable too: ``--trace``/``--metrics`` attach the
observability layer to the in-process replays (a campaign served whole
from ``--cache-dir`` performs none, leaving both empty).

The ``profile`` pseudo-artifact analyzes a recorded JSONL trace offline
(flush provenance, FASE latency, controller diagnostics — DESIGN.md
§11), prints the markdown profile (``--top-k`` sizes the hottest-lines
table), and optionally writes ``--json`` / ``--html`` reports;
``tracediff`` aligns two traces and reports their deltas under
``--tolerance``::

    python -m repro.experiments profile --trace run.jsonl --html report.html
    python -m repro.experiments tracediff --trace a.jsonl --trace b.jsonl

The ``monitor`` pseudo-artifact watches work live (DESIGN.md §12):
by default it runs an artifact's grid (``--grid``) under a refreshing
terminal dashboard fed by per-cell metric snapshots, with declarative
alert rules (``--rule``, see the grammar in ``repro.obs.live``) writing
a deterministic JSONL alert log; ``--follow PATH`` instead tails a
JSONL trace file as it is written, folding it into a streaming profile
window by window.  ``--once --json`` is the headless/CI form::

    python -m repro.experiments monitor --grid table1 --scale 0.05 --jobs 2 \\
        --once --json --alert-log alerts.jsonl
    python -m repro.experiments monitor --follow run.jsonl --once

The ``history`` pseudo-artifact queries the run ledger — the append-only
provenance store every entry point records into (DESIGN.md §16) —
longitudinally: per-spec ``trend`` timelines with EWMA fits and
changepoints, a ``regress`` gate against the fitted trend (non-zero exit
on a flagged timeline, the CI hook), last-two ``compare`` deltas, and
``flaky`` campaign tracking.  ``--import BENCH_*.json`` seeds the bench
timeline from committed files::

    python -m repro.experiments history --query regress --metric time \\
        --kind run --threshold 15
    python -m repro.experiments history --query trend --kind bench \\
        --metric batched_eps_geomean --json trend.json --html trend.html
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.cache.spec import TechniqueSpec
from repro.common.errors import ConfigurationError
from repro.experiments.harness import Harness, HarnessConfig
from repro.experiments.report import GENERATORS, generate


def _heartbeat(done: int, total: int, cell) -> None:
    """The per-cell progress line parallel sweeps print to stderr."""
    name, technique, threads = cell
    print(f"[{done}/{total}] {name}/{technique}/{threads}", file=sys.stderr)


def _run_traced(harness: Harness, args: argparse.Namespace) -> int:
    """The ``run`` pseudo-artifact: one cell with tracing/metrics on."""
    from repro import api

    ledger_artifacts = {}
    for path in args.trace or []:
        ledger_artifacts.setdefault("trace", path)
    if args.metrics:
        ledger_artifacts["metrics"] = args.metrics
    result, recorder, metrics = api.traced_run(
        api.RunSpec(
            workload=args.workload,
            technique=args.technique,
            threads=args.threads,
            scale=args.scale,
            seed=args.seed,
        ),
        harness=harness,
        metrics_interval=args.metrics_interval if args.metrics else None,
        ledger_artifacts=ledger_artifacts or None,
    )
    print(repr(result))
    counts = recorder.counts()
    if counts:
        print("trace events: " + ", ".join(f"{k}={v}" for k, v in counts.items()))
    else:
        print("trace events: none")
    sizes = result.selected_sizes
    if any(sizes.values()):
        print(f"selected sizes: {sizes}")
    for path in args.trace or []:
        if path.endswith(".jsonl"):
            recorder.write_jsonl(path)
        else:
            recorder.write_chrome(path)
        print(f"wrote {path}", file=sys.stderr)
    if args.metrics:
        metrics.write_json(args.metrics)
        print(f"wrote {args.metrics}", file=sys.stderr)
    return 0


def _severity_gate(diagnoses, fail_on: str) -> int:
    """Exit code for a diagnosis list under the ``--fail-on`` policy."""
    from repro.obs.analyze import SEVERITIES, max_severity

    if fail_on == "never":
        return 0
    worst = max_severity(diagnoses)
    if worst is None:
        return 0
    return 1 if SEVERITIES.index(worst) >= SEVERITIES.index(fail_on) else 0


def _run_profile(args: argparse.Namespace) -> int:
    """The ``profile`` pseudo-artifact: offline trace analytics."""
    import json

    from repro.obs import analyze, read_jsonl
    from repro.obs import report as obs_report

    from repro.obs.analyze import AnalyzerConfig

    if not args.trace or len(args.trace) != 1:
        print("profile needs exactly one --trace PATH (a .jsonl trace)",
              file=sys.stderr)
        return 2
    if args.top_k < 1:
        print("--top-k must be >= 1", file=sys.stderr)
        return 2
    path = args.trace[0]
    profile = analyze(read_jsonl(path), AnalyzerConfig(top_k=args.top_k))
    metrics_doc = None
    if args.metrics:
        with open(args.metrics, "r", encoding="utf-8") as fh:
            metrics_doc = json.load(fh)
    # With ``--json -`` stdout carries the machine-readable document, so
    # the human-readable report moves to stderr to keep stdout parseable.
    report_stream = sys.stderr if args.json_out == "-" else sys.stdout
    print(
        obs_report.render_markdown(profile, title=f"Trace profile: {path}"),
        file=report_stream,
    )
    if args.json_out:
        if args.json_out == "-":
            sys.stdout.write(profile.to_json())
        else:
            obs_report.write_text(args.json_out, profile.to_json())
            print(f"wrote {args.json_out}", file=sys.stderr)
    if args.html:
        obs_report.write_text(
            args.html,
            obs_report.render_html(
                profile, title=f"Trace profile: {path}", metrics_doc=metrics_doc
            ),
        )
        print(f"wrote {args.html}", file=sys.stderr)

    # Register the analysis in the run ledger, keyed by the trace it
    # read: `history regress` joins a flagged run to this record through
    # the shared trace path, pointing straight at the profile reports.
    from repro.obs.analyze import max_severity
    from repro.obs.ledger import record_run

    artifacts = {"trace": path}
    if args.json_out and args.json_out != "-":
        artifacts["profile_json"] = args.json_out
    if args.html:
        artifacts["profile_html"] = args.html
    record_run(
        "profile",
        {"artifact": "profile", "trace": path, "top_k": args.top_k},
        {"diagnoses": len(profile.diagnoses)},
        profile={"max_severity": max_severity(profile.diagnoses)},
        artifacts=artifacts,
    )
    return _severity_gate(profile.diagnoses, args.fail_on)


def _run_tracediff(args: argparse.Namespace) -> int:
    """The ``tracediff`` pseudo-artifact: cross-run profile deltas."""
    import json

    from repro.obs import DiffTolerances, analyze, diff_profiles, read_jsonl
    from repro.obs import report as obs_report

    if not args.trace or len(args.trace) != 2:
        print("tracediff needs exactly two --trace PATH arguments",
              file=sys.stderr)
        return 2
    path_a, path_b = args.trace
    diff = diff_profiles(
        analyze(read_jsonl(path_a)),
        analyze(read_jsonl(path_b)),
        DiffTolerances(ratio_pct=args.tolerance),
    )
    print(
        obs_report.render_diff_text(diff, label_a=path_a, label_b=path_b),
        file=sys.stderr if args.json_out == "-" else sys.stdout,
    )
    if args.json_out:
        if args.json_out == "-":
            sys.stdout.write(json.dumps(diff, sort_keys=True, indent=1) + "\n")
        else:
            obs_report.write_text(
                args.json_out, json.dumps(diff, sort_keys=True, indent=1) + "\n"
            )
            print(f"wrote {args.json_out}", file=sys.stderr)
    if args.html:
        obs_report.write_text(
            args.html,
            obs_report.render_diff_html(diff, label_a=path_a, label_b=path_b),
        )
        print(f"wrote {args.html}", file=sys.stderr)
    if diff["verdict"] == "incomparable":
        return 2
    return 0 if diff["verdict"] == "ok" else 1


def _run_crashmatrix(args: argparse.Namespace) -> int:
    """The ``crashmatrix`` pseudo-artifact: fault-injection campaigns."""
    import json

    from repro import api

    workloads = [w for w in args.workloads.split(",") if w]
    techniques = [t for t in args.techniques.split(",") if t]
    models = tuple(m for m in args.fault_models.split(",") if m)
    faults = api.FaultSpec(
        fault_models=models,
        max_sites=args.max_sites,
        sample_seed=args.sample_seed,
        jobs=args.jobs,
    )
    recorder = None
    if args.trace:
        from repro.obs.trace import TraceRecorder

        recorder = TraceRecorder()
    metrics = None
    if args.metrics:
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry(interval=args.metrics_interval)

    matrices = []
    for workload in workloads:
        for technique in techniques:
            spec = api.RunSpec(
                workload=workload,
                technique=technique,
                threads=args.threads,
                scale=args.scale,
                seed=args.seed,
            )
            matrix = api.campaign(
                spec,
                faults,
                cache_dir=args.cache_dir,
                recorder=recorder,
                metrics=metrics,
                progress=lambda done, total: print(
                    f"[{done}/{total}] {workload}/{technique}", file=sys.stderr
                ),
            )
            matrices.append(matrix)
            print(matrix.to_markdown())
            print()

    if args.out:
        payload = [m.to_dict() for m in matrices]
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload[0] if len(payload) == 1 else payload, fh, indent=2)
        print(f"wrote {args.out}", file=sys.stderr)
    for path in args.trace or []:
        if recorder is not None:
            if path.endswith(".jsonl"):
                recorder.write_jsonl(path)
            else:
                recorder.write_chrome(path)
            print(f"wrote {path}", file=sys.stderr)
    if metrics is not None:
        metrics.write_json(args.metrics)
        print(f"wrote {args.metrics}", file=sys.stderr)

    violated = sum(len(m.violations) for m in matrices)
    total = sum(m.injected for m in matrices)

    # One ledger record for the whole invocation, linking the files it
    # wrote (the per-campaign records land via run_campaign): the
    # artifact-level summary `history` joins regressions against.
    from repro.obs.ledger import record_run

    artifacts = {}
    if args.out:
        artifacts["matrix"] = args.out
    for path in args.trace or []:
        artifacts.setdefault("trace", path)
    if args.metrics:
        artifacts["metrics"] = args.metrics
    record_run(
        "crashmatrix",
        {
            "artifact": "crashmatrix",
            "workloads": workloads,
            "techniques": [str(TechniqueSpec.parse(t)) for t in techniques],
            "fault_models": list(models),
            "max_sites": args.max_sites,
            "sample_seed": args.sample_seed,
            "threads": args.threads,
            "scale": args.scale,
            "seed": args.seed,
        },
        {"injected": total, "violated": violated, "ok": not violated},
        artifacts=artifacts,
    )
    if violated:
        print(
            f"FAILED: {violated} violation(s) across {total} injected crashes",
            file=sys.stderr,
        )
        return 1
    print(f"OK: {total} injected crashes, zero violations", file=sys.stderr)
    return 0


def _run_history(args: argparse.Namespace) -> int:
    """The ``history`` pseudo-artifact: longitudinal ledger queries.

    Exit codes follow ``bench_compare``: 0 clean, 1 when the query
    flagged something (a regression finding, a changepoint, a drifted
    compare, a flaky campaign), 2 when there is nothing to query.
    """
    import json

    from repro.obs import history as hist
    from repro.obs import report as obs_report
    from repro.obs.ledger import RunLedger, default_ledger_path

    root = args.ledger or default_ledger_path()
    if root is None:
        print(
            "history: recording is disabled (REPRO_LEDGER=off); "
            "pass --ledger DIR",
            file=sys.stderr,
        )
        return 2
    ledger = RunLedger(root)
    for path in args.import_bench or []:
        try:
            record = hist.import_bench_doc(ledger, path)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"history: cannot import {path}: {exc}", file=sys.stderr)
            return 2
        print(
            f"imported {path} as bench record {record.run_id}",
            file=sys.stderr,
        )

    if args.query == "trend":
        lines = hist.trend(
            ledger,
            args.metric,
            kind=args.kind,
            spec_filter=args.spec,
            limit=args.limit,
            min_shift_pct=args.threshold,
        )
        doc = {
            "query": "trend",
            "metric": args.metric,
            "lines": [line.to_dict() for line in lines],
            "ok": not any(line.changepoint for line in lines),
        }
    elif args.query == "regress":
        doc = hist.regress(
            ledger,
            args.metric,
            kind=args.kind,
            spec_filter=args.spec,
            threshold_pct=args.threshold,
            direction=args.direction,
            limit=args.limit,
        )
        doc["query"] = "regress"
    elif args.query == "compare":
        doc = hist.compare(ledger, kind=args.kind, spec_filter=args.spec)
        doc["query"] = "compare"
    else:
        doc = hist.flaky(
            ledger, kind=args.kind or "campaign", spec_filter=args.spec
        )
        doc["query"] = "flaky"
    if ledger.skipped_lines:
        doc["skipped_lines"] = ledger.skipped_lines

    report_stream = sys.stderr if args.json_out == "-" else sys.stdout
    print(obs_report.render_history_text(doc), file=report_stream, end="")
    title = f"Run history: {args.query}"
    if args.json_out:
        body = json.dumps(doc, sort_keys=True, indent=1) + "\n"
        if args.json_out == "-":
            sys.stdout.write(body)
        else:
            obs_report.write_text(args.json_out, body)
            print(f"wrote {args.json_out}", file=sys.stderr)
    if args.md:
        obs_report.write_text(
            args.md, obs_report.render_history_markdown(doc, title=title)
        )
        print(f"wrote {args.md}", file=sys.stderr)
    if args.html:
        obs_report.write_text(
            args.html, obs_report.render_history_html(doc, title=title)
        )
        print(f"wrote {args.html}", file=sys.stderr)
    return 0 if doc.get("ok", True) else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (see module docstring); returns an exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures on the simulator.",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(GENERATORS)
        + [
            "all",
            "crashmatrix",
            "history",
            "monitor",
            "profile",
            "run",
            "tracediff",
        ],
        help="which table/figure to regenerate, 'run' for one traced "
        "cell, 'crashmatrix' for fault-injection campaigns, 'profile' "
        "to analyze a recorded trace, 'tracediff' to compare two, "
        "'monitor' to watch a grid or trace live, or 'history' to "
        "query the run ledger's longitudinal record",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload problem-size multiplier (default 1.0)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the run grid (default 1 = in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist run results as JSON under DIR (e.g. .cache)",
    )
    parser.add_argument(
        "--write",
        nargs="?",
        const="EXPERIMENTS.md",
        default=None,
        metavar="PATH",
        help="with 'all': also write the EXPERIMENTS.md report",
    )
    parser.add_argument(
        "--svg",
        default=None,
        metavar="DIR",
        help="also render the figure's chart(s) as SVG into DIR",
    )
    tracing = parser.add_argument_group("'run' (traced single cell)")
    tracing.add_argument(
        "--workload", default="mdb", help="workload name (default mdb)"
    )
    tracing.add_argument(
        "--technique",
        default="SC",
        help="technique spec: a base (ER, LA, AT, SC, SC-offline, BEST) "
        "optionally composed with policy stages, e.g. "
        "SC+nhit:2+clean:4+victim:16 (default SC)",
    )
    tracing.add_argument(
        "--threads", type=int, default=1, help="simulated threads (default 1)"
    )
    tracing.add_argument(
        "--trace",
        action="append",
        metavar="PATH",
        help="write the structured trace; '.jsonl' suffix selects JSON "
        "lines, anything else Chrome trace_event (Perfetto); repeatable",
    )
    tracing.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="'run'/'crashmatrix': dump the sampled metrics registry as "
        "JSON; 'profile': read such a dump and chart it in the report",
    )
    tracing.add_argument(
        "--metrics-interval",
        type=int,
        default=10_000,
        metavar="N",
        help="model cycles between metric samples (default 10000)",
    )
    analytics = parser.add_argument_group("'profile' / 'tracediff' (analytics)")
    analytics.add_argument(
        "--json",
        dest="json_out",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="write the profile/diff/monitor summary as deterministic "
        "JSON; bare --json (or PATH '-') means stdout",
    )
    analytics.add_argument(
        "--top-k",
        type=int,
        default=10,
        metavar="K",
        help="'profile': hottest-flushed-lines table length (default 10)",
    )
    analytics.add_argument(
        "--html",
        default=None,
        metavar="PATH",
        help="write the self-contained HTML report",
    )
    analytics.add_argument(
        "--fail-on",
        choices=["error", "warning", "never"],
        default="error",
        help="'profile': exit non-zero on a diagnosis at or above this "
        "severity (default error)",
    )
    analytics.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        metavar="PCT",
        help="'tracediff': allowed relative drift in percent (default 0.5)",
    )
    crash = parser.add_argument_group("'crashmatrix' (fault injection)")
    crash.add_argument(
        "--workloads",
        default="linked-list,hash",
        metavar="A,B",
        help="comma-separated workload names (default linked-list,hash)",
    )
    crash.add_argument(
        "--techniques",
        default="SC",
        metavar="A,B",
        help="comma-separated technique specs, composed stages allowed, "
        "e.g. SC,SC+clean:4 (default SC)",
    )
    crash.add_argument(
        "--fault-models",
        default="clean",
        metavar="A,B",
        help="comma-separated fault models: clean, torn_line, "
        "reordered_flush (default clean)",
    )
    crash.add_argument(
        "--max-sites",
        type=int,
        default=256,
        metavar="N",
        help="sample above N injectable sites per campaign (default 256)",
    )
    crash.add_argument(
        "--sample-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for the strided site sampler (default 0)",
    )
    crash.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the crash matrix (or list of matrices) as JSON",
    )
    ledger = parser.add_argument_group("'history' (run-ledger queries)")
    ledger.add_argument(
        "--query",
        choices=["trend", "compare", "regress", "flaky"],
        default="trend",
        help="which longitudinal question to answer (default trend)",
    )
    ledger.add_argument(
        "--ledger",
        default=None,
        metavar="DIR",
        help="ledger root (default: $REPRO_LEDGER, else .ledger)",
    )
    ledger.add_argument(
        "--metric",
        default="time",
        metavar="NAME",
        help="dotted metric path for trend/regress; bare names resolve "
        "under counters first (default time)",
    )
    ledger.add_argument(
        "--kind",
        default=None,
        metavar="KIND",
        help="restrict to one record kind (run, traced_run, grid, "
        "campaign, bench, ...)",
    )
    ledger.add_argument(
        "--spec",
        default=None,
        metavar="FILTER",
        help="restrict to timelines matching a spec-sha prefix, label "
        "substring, or spec-JSON substring",
    )
    ledger.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        metavar="PCT",
        help="regress/trend: deviation (changepoint shift) percent that "
        "flags a timeline (default 10)",
    )
    ledger.add_argument(
        "--direction",
        choices=["auto", "up", "down"],
        default="auto",
        help="regress: which way the metric regresses (default auto: "
        "inferred from the metric name)",
    )
    ledger.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="use only the newest N records of each timeline",
    )
    ledger.add_argument(
        "--import",
        dest="import_bench",
        action="append",
        metavar="PATH",
        help="first wrap an existing BENCH_*.json as a bench ledger "
        "record (seeds history from committed files); repeatable",
    )
    ledger.add_argument(
        "--md",
        default=None,
        metavar="PATH",
        help="write the query result as a markdown report",
    )
    mon = parser.add_argument_group("'monitor' (live telemetry)")
    mon.add_argument(
        "--grid",
        default="table1",
        metavar="ARTIFACT",
        help="grid mode: which artifact's run grid to execute and watch "
        "(default table1)",
    )
    mon.add_argument(
        "--follow",
        default=None,
        metavar="PATH",
        help="follow mode: tail a JSONL trace file being written "
        "instead of running a grid",
    )
    mon.add_argument(
        "--once",
        action="store_true",
        help="headless: process what is available, render once, exit",
    )
    mon.add_argument(
        "--refresh",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="seconds between dashboard redraws (default 1.0)",
    )
    mon.add_argument(
        "--rule",
        action="append",
        metavar="RULE",
        help="alert rule 'name: metric > value [@severity]' (also "
        "rate(metric) / sustained(metric, N)); repeatable; a name "
        "matching a default rule overrides it",
    )
    mon.add_argument(
        "--alert-log",
        default=None,
        metavar="PATH",
        help="append fired alerts to PATH as deterministic JSONL",
    )
    mon.add_argument(
        "--window",
        type=int,
        default=100_000,
        metavar="CYCLES",
        help="follow mode: streaming-profile window length in model "
        "cycles (default 100000)",
    )
    mon.add_argument(
        "--max-idle",
        type=float,
        default=None,
        metavar="SECONDS",
        help="follow mode: stop after this long with no new trace bytes "
        "(default: follow until interrupted)",
    )
    mon.add_argument(
        "--fleet",
        action="store_true",
        help="fleet mode: watch the --jobs worker pool itself (per-worker "
        "rows, dead-worker/straggler/RSS alerts); with --follow PATH, "
        "tail a fleet JSONL spill instead of a trace",
    )
    mon.add_argument(
        "--campaign",
        action="store_true",
        help="fleet mode: run a crash campaign (first of --workloads × "
        "--techniques, with the crashmatrix sampling knobs) instead of "
        "a grid",
    )
    mon.add_argument(
        "--span-export",
        default=None,
        metavar="PATH",
        help="fleet mode: write the deterministic Perfetto scheduler "
        "timeline of the pool after the run",
    )
    mon.add_argument(
        "--fleet-log",
        default=None,
        metavar="PATH",
        help="fleet mode: spill every fleet event to PATH as JSONL "
        "(tail it elsewhere with --fleet --follow PATH)",
    )
    mon.add_argument(
        "--sample-interval",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="fleet mode: per-worker RSS/CPU sampling cadence "
        "(default 0.2; 0 disables the sampler threads)",
    )
    args = parser.parse_args(argv)

    # Validate technique specs up front, before any simulation starts,
    # so a typo in a composed spec fails in milliseconds with the
    # parser's precise message (naming the bad stage or parameter)
    # rather than deep inside a worker process.
    try:
        TechniqueSpec.parse(args.technique)
        for entry in args.techniques.split(","):
            if entry:
                TechniqueSpec.parse(entry)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    start = time.time()
    if args.artifact == "monitor":
        from repro.experiments.monitor import run_monitor

        return run_monitor(
            args,
            lambda: Harness(
                HarnessConfig(scale=args.scale, seed=args.seed),
                cache_dir=args.cache_dir,
            ),
        )
    if args.artifact == "history":
        return _run_history(args)
    if args.artifact == "profile":
        return _run_profile(args)
    if args.artifact == "tracediff":
        return _run_tracediff(args)
    if args.artifact == "crashmatrix":
        rc = _run_crashmatrix(args)
        print(f"\n[{time.time() - start:.1f}s]", file=sys.stderr)
        return rc
    harness = Harness(
        HarnessConfig(scale=args.scale, seed=args.seed),
        cache_dir=args.cache_dir,
    )
    if args.artifact == "run":
        rc = _run_traced(harness, args)
        print(f"\n[{time.time() - start:.1f}s]", file=sys.stderr)
        return rc
    if args.jobs > 1:
        from repro.experiments.parallel import grid_for

        cells = grid_for(harness, args.artifact)
        if cells:
            grid_start = time.time()
            harness.run_grid(cells, jobs=args.jobs, progress=_heartbeat)
            print(
                f"[grid: {len(cells)} cells on {args.jobs} workers in "
                f"{time.time() - grid_start:.1f}s]",
                file=sys.stderr,
            )
    if args.artifact == "all":
        body = generate(harness, write_path=args.write, svg_dir=args.svg)
        print(body)
    else:
        art = GENERATORS[args.artifact](harness)
        print(art.title)
        print()
        print(art.text)
        if args.svg and args.artifact.startswith("figure"):
            from repro.experiments.plots import write_artifact_svgs

            for path in write_artifact_svgs(art, args.svg):
                print(f"wrote {path}", file=sys.stderr)
    print(f"\n[{time.time() - start:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
