"""Tables I–IV of the paper's evaluation.

Each ``tableN`` function runs what it needs through a :class:`Harness`
and returns an :class:`Artifact`: structured rows (used by the test
suite and EXPERIMENTS.md) plus a rendered text block.  Where the paper
publishes numbers, they ride along in ``paper_*`` columns so the shape
comparison is visible in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import Harness
from repro.experiments.metrics import arithmetic_mean, format_table, speedup
from repro.workloads.splash2 import SPLASH2_PROFILES

#: Table III's published flush ratios for the non-SPLASH2 workloads.
PAPER_TABLE3 = {
    "linked-list": dict(la=0.60001, at=0.60001, sc=0.60001),
    "persistent-array": dict(la=0.00003, at=0.06250, sc=0.00003),
    "queue": dict(la=0.62500, at=0.62500, sc=0.62500),
    "hash": dict(la=0.50092, at=0.62128, sc=0.59531),
    "mdb": dict(la=0.05163, at=0.30140, sc=0.11289),
}
for _name, _p in SPLASH2_PROFILES.items():
    PAPER_TABLE3[_name] = dict(la=_p.paper_la, at=_p.paper_at, sc=_p.paper_sc)

#: Table II's published speedups over ER (Mtest on MDB, 8 threads).
PAPER_TABLE2_SPEEDUPS = {
    "ER": 1.0,
    "AT": 2.94,
    "SC": 5.07,
    "SC-offline": 5.60,
    "BEST": 6.94,
}

#: Workloads excluded from the AT/SC and SC/LA averages, as in the
#: paper's Table III caption ("persistent-array, which is artificial,
#: and linked-list and queue, which are already optimal").
AVERAGE_EXCLUDED = ("persistent-array", "linked-list", "queue")

#: The policy-zoo head-to-head grid: each composable stage alone at its
#: default parameter, the full stack, and both SC baselines.  Specs are
#: canonical :class:`~repro.cache.spec.TechniqueSpec` strings.
POLICY_ZOO_SPECS = (
    "SC",
    "SC+nhit:2",
    "SC+cutoff:8",
    "SC+clean:4",
    "SC+victim:16",
    "SC+nhit:2+clean:4+victim:16",
    "SC-offline",
)

#: Workloads the zoo runs on: one FASE-dense queue, one hash-scatter,
#: and the paper's main mixed benchmark.
POLICY_ZOO_WORKLOADS = ("queue", "hash", "mdb")


@dataclass
class Artifact:
    """One regenerated table or figure."""

    name: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    series: Dict[str, Dict[str, Sequence[float]]] = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:
        return f"{self.title}\n\n{self.text}"


def _adapted_sizes(result) -> List[int]:
    """The size each adapting thread settled on (final selection)."""
    return [
        sizes[-1]
        for _tid, sizes in sorted(result.selected_sizes.items())
        if sizes
    ]


def _sizes_text(final: List[int]) -> str:
    """Compact rendering of per-thread final sizes for a table cell."""
    if not final:
        return "-"
    return ",".join(str(s) for s in sorted(set(final)))


def table1(harness: Harness) -> Artifact:
    """Table I: the cost of eager persistence on SPLASH2.

    Slowdown of flush-per-store (ER) relative to no persistence (BEST),
    single-threaded.  The paper's average is 22x.
    """
    rows = []
    for name in harness.splash2_workloads():
        er = harness.run(name, "ER")
        best = harness.run(name, "BEST")
        rows.append(
            {
                "program": name,
                "slowdown": round(er.time / best.time, 1),
                "paper_slowdown": SPLASH2_PROFILES[name].eager_slowdown,
            }
        )
    rows.append(
        {
            "program": "average",
            "slowdown": round(arithmetic_mean(r["slowdown"] for r in rows), 1),
            "paper_slowdown": 22.0,
        }
    )
    text = format_table(
        ["program", "slowdown", "paper"],
        [[r["program"], f"{r['slowdown']}x", f"{r['paper_slowdown']}x"] for r in rows],
    )
    return Artifact("table1", "Table I: cost of eager data persistence", rows, text=text)


def table2(harness: Harness, threads: int = 8) -> Artifact:
    """Table II: Mtest on MDB — times and speedups over ER."""
    techniques = ["ER", "AT", "SC", "SC-offline", "BEST"]
    results = {t: harness.run("mdb", t, threads) for t in techniques}
    er = results["ER"]
    rows = []
    for t in techniques:
        rows.append(
            {
                "method": t,
                "time_cycles": results[t].time,
                "speedup": round(speedup(er, results[t]), 2),
                "paper_speedup": PAPER_TABLE2_SPEEDUPS[t],
                "adapted_sizes": _adapted_sizes(results[t]),
            }
        )
    text = format_table(
        ["method", "time (Mcycles)", "speedup", "paper", "sizes"],
        [
            [
                r["method"],
                f"{r['time_cycles'] / 1e6:.2f}",
                f"{r['speedup']}x",
                f"{r['paper_speedup']}x",
                _sizes_text(r["adapted_sizes"]),
            ]
            for r in rows
        ],
    )
    return Artifact("table2", "Table II: execution of Mtest on MDB", rows, text=text)


def table3(harness: Harness) -> Artifact:
    """Table III: flush ratios of all 12 benchmarks under each technique.

    The SC column follows the paper's convention ("the number of flushes
    is almost identical for SC and SC-offline, which is shown by SC"):
    it reports the software cache at the profiled size.  The online
    run's ratio is included as ``sc_online`` for completeness.
    """
    rows = []
    for name in harness.all_workloads():
        er = harness.run(name, "ER")
        la = harness.run(name, "LA")
        at = harness.run(name, "AT")
        sc = harness.run(name, "SC-offline")
        sco = harness.run(name, "SC")
        paper = PAPER_TABLE3[name]
        at_over_sc = at.flush_ratio / sc.flush_ratio if sc.flush_ratio else float("inf")
        sc_over_la = sc.flush_ratio / la.flush_ratio if la.flush_ratio else float("inf")
        rows.append(
            {
                "benchmark": name,
                "fases": la.fase_count,
                "stores": la.persistent_stores,
                "er": er.flush_ratio,
                "la": la.flush_ratio,
                "at": at.flush_ratio,
                "sc": sc.flush_ratio,
                "sc_online": sco.flush_ratio,
                "at_over_sc": at_over_sc,
                "sc_over_la": sc_over_la,
                "paper_la": paper["la"],
                "paper_at": paper["at"],
                "paper_sc": paper["sc"],
            }
        )
    included = [r for r in rows if r["benchmark"] not in AVERAGE_EXCLUDED]
    avg = {
        "benchmark": "average",
        "fases": round(arithmetic_mean(r["fases"] for r in rows)),
        "stores": round(arithmetic_mean(r["stores"] for r in rows)),
        "er": 1.0,
        "la": arithmetic_mean(r["la"] for r in rows),
        "at": arithmetic_mean(r["at"] for r in rows),
        "sc": arithmetic_mean(r["sc"] for r in rows),
        "sc_online": arithmetic_mean(r["sc_online"] for r in rows),
        "at_over_sc": arithmetic_mean(r["at_over_sc"] for r in included),
        "sc_over_la": arithmetic_mean(r["sc_over_la"] for r in included),
        "paper_la": 0.16256,
        "paper_at": 0.25066,
        "paper_sc": 0.18268,
    }
    rows.append(avg)
    text = format_table(
        ["benchmark", "fases", "stores", "ER", "LA(paper)", "AT(paper)",
         "SC(paper)", "AT/SC", "SC/LA"],
        [
            [
                r["benchmark"],
                r["fases"],
                r["stores"],
                f"{r['er']:.5f}",
                f"{r['la']:.5f} ({r['paper_la']:.5f})",
                f"{r['at']:.5f} ({r['paper_at']:.5f})",
                f"{r['sc']:.5f} ({r['paper_sc']:.5f})",
                f"{r['at_over_sc']:.2f}x",
                f"{r['sc_over_la']:.2f}x",
            ]
            for r in rows
        ],
    )
    return Artifact(
        "table3", "Table III: benchmark statistics and data flush ratios", rows,
        text=text,
    )


def table4(
    harness: Harness, threads: Optional[Sequence[int]] = None
) -> Artifact:
    """Table IV: water-spatial across thread counts.

    Instructions, software flush ratios and hardware L1 miss ratios for
    AT, SC and BEST (BE), as in the paper's per-thread analysis.
    """
    threads = list(threads or (1, 2, 4, 8, 16, 32))
    techniques = ["AT", "SC", "BEST"]
    rows = []
    for n in threads:
        row: Dict[str, object] = {"threads": n}
        for t in techniques:
            r = harness.run("water-spatial", t, n)
            key = {"AT": "at", "SC": "sc", "BEST": "be"}[t]
            row[f"inst_{key}"] = r.instructions
            row[f"flush_ratio_{key}"] = r.flush_ratio
            row[f"l1_mr_{key}"] = r.l1_miss_ratio
            if t == "SC":
                row["sc_sizes"] = _adapted_sizes(r)
        rows.append(row)
    text = format_table(
        ["threads", "inst AT", "inst SC", "inst BE",
         "flush% AT", "flush% SC", "flush% BE",
         "L1 mr AT", "L1 mr SC", "L1 mr BE", "SC sizes"],
        [
            [
                r["threads"],
                f"{r['inst_at'] / 1e6:.2f}M",
                f"{r['inst_sc'] / 1e6:.2f}M",
                f"{r['inst_be'] / 1e6:.2f}M",
                f"{100 * r['flush_ratio_at']:.2f}%",
                f"{100 * r['flush_ratio_sc']:.2f}%",
                f"{100 * r['flush_ratio_be']:.2f}%",
                f"{100 * r['l1_mr_at']:.2f}%",
                f"{100 * r['l1_mr_sc']:.2f}%",
                f"{100 * r['l1_mr_be']:.2f}%",
                _sizes_text(r["sc_sizes"]),
            ]
            for r in rows
        ],
    )
    return Artifact(
        "table4", "Table IV: water-spatial across thread counts", rows, text=text
    )


def policyzoo(harness: Harness) -> Artifact:
    """Policy zoo: composed write-cache policy stages head to head.

    Runs every spec in :data:`POLICY_ZOO_SPECS` on each zoo workload and
    reports time, speedup over plain SC (same workload), flush ratio,
    and the per-stage flush provenance (clean / bypass / victim
    counters) — the table the paper's §V would have shown had ALRU-style
    cleaning and admission filters been part of the evaluation.
    """
    rows = []
    for name in POLICY_ZOO_WORKLOADS:
        base = harness.run(name, "SC")
        for spec in POLICY_ZOO_SPECS:
            r = harness.run(name, spec)
            rows.append(
                {
                    "workload": name,
                    "spec": spec,
                    "time_cycles": r.time,
                    "speedup_vs_sc": round(speedup(base, r), 3),
                    "flush_ratio": r.flush_ratio,
                    "clean_flushes": sum(t.clean_flushes for t in r.threads),
                    "bypass_flushes": sum(t.bypass_flushes for t in r.threads),
                    "victim_flushes": sum(t.victim_flushes for t in r.threads),
                }
            )
    text = format_table(
        ["workload", "spec", "time (Mcycles)", "vs SC", "flush ratio",
         "clean", "bypass", "victim"],
        [
            [
                r["workload"],
                r["spec"],
                f"{r['time_cycles'] / 1e6:.2f}",
                f"{r['speedup_vs_sc']}x",
                f"{r['flush_ratio']:.5f}",
                r["clean_flushes"],
                r["bypass_flushes"],
                r["victim_flushes"],
            ]
            for r in rows
        ],
    )
    return Artifact(
        "policyzoo",
        "Policy zoo: composed write-cache policies head to head",
        rows,
        text=text,
    )


def adaptation(harness: Harness) -> Artifact:
    """Adaptation history: online SC size selections vs the offline knee.

    One row per benchmark: every size the single-thread online run
    selected (in selection order), the size it settled on, and the
    whole-trace offline choice — the paper's claim that burst sampling
    finds (nearly) the offline size, made inspectable per workload.
    """
    rows = []
    for name in harness.all_workloads():
        sc = harness.run(name, "SC")
        history = list(sc.selected_sizes.get(0, []))
        final = history[-1] if history else None
        offline = harness.offline_size(name)
        rows.append(
            {
                "benchmark": name,
                "history": history,
                "selections": len(history),
                "final": final,
                "offline": offline,
                "delta": (final - offline) if final is not None else None,
            }
        )
    text = format_table(
        ["benchmark", "history", "final", "offline", "delta"],
        [
            [
                r["benchmark"],
                " -> ".join(str(s) for s in r["history"]) or "-",
                "-" if r["final"] is None else r["final"],
                r["offline"],
                "-" if r["delta"] is None else f"{r['delta']:+d}",
            ]
            for r in rows
        ],
    )
    return Artifact(
        "adaptation",
        "Adaptation history: online SC size selections vs offline knee",
        rows,
        text=text,
    )
