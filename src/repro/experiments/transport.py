"""Pickle-free transport and fork-once workers for parallel execution.

Two layers, both built for the experiment grids' actual data shapes:

**Columnar shared memory.**  Event data in this repo is already
contiguous columns — :class:`~repro.common.events.EventBatch` holds three
parallel ``array`` columns, a :class:`~repro.locality.trace.WriteTrace`
two 1-D numpy arrays.  Shipping those through a ``multiprocessing`` pipe
would pickle them byte by byte; instead :func:`share_columns` copies the
raw column bytes into one ``multiprocessing.shared_memory`` segment and
returns a small *manifest* (segment name + per-column dtype/shape/offset
header).  The manifest is what crosses the pipe; the receiver rebuilds
the columns straight from the mapped segment with ``array.frombytes`` /
``numpy.frombuffer`` — one memcpy, no pickling of event data.

Lifecycle: the *creator* writes the segment and forgets it; the
*consumer* attaches, copies out, and closes; whichever side owns cleanup
calls :func:`unlink_segment` exactly once.  CPython's resource tracker
registers a segment in **every** process that touches it (create and
attach both register on 3.11), which would produce double-unlink races
and leak warnings between a parent and its workers — so every open here
immediately unregisters and the module manages unlinking explicitly.

**Fork-once workers.**  :class:`WorkerPool` spawns ``jobs`` processes
once per sweep, each of which builds its state (a ``Harness`` with the
frozen config, or nothing for shard tasks) a single time and then pulls
tasks from one shared queue until it sees the stop sentinel.  A shared
queue *is* work stealing: whichever worker finishes first pulls the next
chunk, so imbalanced groups level out without any up-front assignment.
Task payloads are small control tuples (configs, cell lists, manifests);
bulk data rides in shared memory.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from array import array
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.events import EventBatch

#: Column offsets inside a segment are aligned to this many bytes so
#: ``numpy.frombuffer`` views are always well-aligned.
_ALIGN = 16


def _align(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Drop this process's resource-tracker registration of ``segment``.

    Registration happens on both create and attach; cleanup here is
    explicit (:func:`unlink_segment`), so the tracker must not also try.
    """
    try:
        resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


# ---------------------------------------------------------------------------
# Columnar shared memory
# ---------------------------------------------------------------------------


def share_columns(columns: Sequence[object]) -> Dict:
    """Copy integer columns into one shared-memory segment.

    ``columns`` may mix ``array.array`` objects and 1-D numpy arrays.
    Returns the manifest the consumer passes to :func:`attach_columns`;
    the segment stays allocated until :func:`unlink_segment`.
    """
    specs: List[Dict] = []
    offset = 0
    for col in columns:
        if isinstance(col, array):
            spec = {"kind": "array", "typecode": col.typecode, "count": len(col)}
            nbytes = len(col) * col.itemsize
        elif isinstance(col, np.ndarray):
            if col.ndim != 1:
                raise ConfigurationError(
                    f"only 1-D arrays can be shared, got shape {col.shape}"
                )
            spec = {"kind": "ndarray", "dtype": str(col.dtype), "count": len(col)}
            nbytes = col.nbytes
        else:
            raise ConfigurationError(
                f"unshareable column type {type(col).__name__}"
            )
        spec["offset"] = offset
        specs.append(spec)
        offset = _align(offset + nbytes)
    total = max(1, offset)
    segment = shared_memory.SharedMemory(create=True, size=total)
    _untrack(segment)
    try:
        buf = segment.buf
        for col, spec in zip(columns, specs):
            raw = col.tobytes() if isinstance(col, array) else col.tobytes()
            start = spec["offset"]
            buf[start : start + len(raw)] = raw
        return {"shm": segment.name, "nbytes": total, "columns": specs}
    finally:
        segment.close()


def attach_columns(manifest: Dict) -> List[object]:
    """Rebuild the columns of a :func:`share_columns` manifest.

    Each column is copied out of the mapped segment (one memcpy) into a
    fresh ``array.array`` / numpy array, so the returned columns outlive
    the segment.  The mapping is closed before returning; the segment
    itself is left for :func:`unlink_segment`.
    """
    segment = shared_memory.SharedMemory(name=manifest["shm"])
    _untrack(segment)
    try:
        buf = segment.buf
        out: List[object] = []
        for spec in manifest["columns"]:
            start = spec["offset"]
            if spec["kind"] == "array":
                col = array(spec["typecode"])
                nbytes = spec["count"] * col.itemsize
                col.frombytes(buf[start : start + nbytes])
            else:
                col = np.frombuffer(
                    buf, dtype=np.dtype(spec["dtype"]),
                    count=spec["count"], offset=start,
                ).copy()
            out.append(col)
        return out
    finally:
        segment.close()


def unlink_segment(manifest: Optional[Dict]) -> None:
    """Free a shared segment; idempotent (a missing segment is fine)."""
    if manifest is None:
        return
    try:
        segment = shared_memory.SharedMemory(name=manifest["shm"])
    except FileNotFoundError:
        return
    try:
        segment.unlink()
    finally:
        segment.close()


# -- event batches and traces over the column transport ----------------------


def share_batches(per_thread_batches: Sequence[Sequence[EventBatch]]) -> Dict:
    """Publish per-thread :class:`EventBatch` lists as one segment."""
    columns: List[object] = []
    shape: List[int] = []
    for batches in per_thread_batches:
        shape.append(len(batches))
        for batch in batches:
            columns.extend(batch.columns())
    manifest = share_columns(columns)
    manifest["batches_per_thread"] = shape
    return manifest


def attach_batches(manifest: Dict) -> List[List[EventBatch]]:
    """Rebuild the per-thread batch lists of a :func:`share_batches` manifest."""
    columns = attach_columns(manifest)
    out: List[List[EventBatch]] = []
    it = iter(columns)
    for count in manifest["batches_per_thread"]:
        out.append(
            [EventBatch.from_columns(next(it), next(it), next(it)) for _ in range(count)]
        )
    return out


def share_traces(traces: Sequence[object]) -> Dict:
    """Publish per-thread :class:`WriteTrace` objects as one segment."""
    columns: List[object] = []
    for trace in traces:
        columns.append(trace.lines)
        columns.append(trace.fase_ids)
    manifest = share_columns(columns)
    manifest["num_traces"] = len(traces)
    return manifest


def attach_traces(manifest: Dict) -> List[object]:
    """Rebuild the traces of a :func:`share_traces` manifest."""
    from repro.locality.trace import WriteTrace

    columns = attach_columns(manifest)
    return [
        WriteTrace(columns[2 * i], columns[2 * i + 1])
        for i in range(manifest["num_traces"])
    ]


# ---------------------------------------------------------------------------
# Fork-once worker pool
# ---------------------------------------------------------------------------

#: How long the parent waits between liveness checks while collecting.
_POLL_S = 1.0


def _preferred_context() -> mp.context.BaseContext:
    """Fork where available (cheap spawn, state inherited), else spawn."""
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context("spawn")


def _worker_main(init: Tuple, tasks, results, fleet: Optional[Tuple] = None) -> None:
    """Worker loop: build state once, then pull tasks until the sentinel.

    Every task is ``(task_id, kind, payload)``; every reply is
    ``(task_id, "ok", result)`` or ``(task_id, "error", traceback)``.
    Handlers live in :mod:`repro.experiments.parallel` (imported here,
    once, at worker start) so this module stays free of harness imports.

    ``fleet``, when given, is ``(queue, worker_index, cfg)`` from
    :meth:`repro.obs.fleet.FleetTelemetry.worker_args`: the worker then
    streams claim/finish/error events (and, if ``cfg["sample_interval"]``
    is set, periodic RSS/CPU samples) over the bus.  A task's
    ``task_finished`` event is emitted *after* its result is on the
    result queue — if the worker dies between the two, the parent sees a
    still-claimed task and resubmits it; the duplicate reply is filtered
    by id, never lost.
    """
    import time as _time

    from repro.experiments.parallel import describe_task, make_task_handlers

    emitter = None
    sampler = None
    if fleet is not None:
        from repro.obs.fleet import FleetEmitter, ResourceSampler

        queue, index, cfg = fleet
        emitter = FleetEmitter(queue, index)
        emitter.worker_started()
        interval = cfg.get("sample_interval")
        if interval:
            sampler = ResourceSampler(emitter, interval)
            sampler.start()
    handlers = make_task_handlers(*init, emitter=emitter)
    done = 0
    try:
        while True:
            task = tasks.get()
            if task is None:
                if emitter is not None:
                    emitter.worker_stopped(done)
                return
            task_id, kind, payload = task
            if emitter is not None:
                emitter.task_claimed(task_id, kind, describe_task(kind, payload))
            wall0 = _time.perf_counter()
            cpu0 = _time.process_time()
            try:
                handler = handlers.get(kind)
                if handler is None:
                    raise ConfigurationError(f"unknown worker task kind {kind!r}")
                results.put((task_id, "ok", handler(payload)))
            except BaseException:
                tb = traceback.format_exc()
                results.put((task_id, "error", tb))
                if emitter is not None:
                    emitter.task_error(task_id, tb)
                    emitter.task_finished(
                        task_id,
                        kind,
                        False,
                        _time.perf_counter() - wall0,
                        _time.process_time() - cpu0,
                    )
                done += 1
                continue
            done += 1
            if emitter is not None:
                emitter.task_finished(
                    task_id,
                    kind,
                    True,
                    _time.perf_counter() - wall0,
                    _time.process_time() - cpu0,
                )
    finally:
        if sampler is not None:
            sampler.stop()


class WorkerPool:
    """A fixed set of long-lived worker processes over one task queue.

    ``init`` is handed to every worker exactly once at spawn (the frozen
    harness config and cache dir); tasks then reference that state by
    construction instead of re-shipping it per task — the fork-once
    discipline that replaces the old one-future-per-group fan-out.

    ``telemetry``, when given, is a
    :class:`repro.obs.fleet.FleetTelemetry`: the pool creates the fleet
    bus on its own mp context, hands each worker its emitter arguments,
    pumps the bus while collecting, and — because claims are then
    tracked — *recovers* from a dead worker by resubmitting its in-flight
    tasks instead of raising.  Without telemetry a dead worker is still a
    hard error, as before.
    """

    def __init__(self, jobs: int, init: Tuple, telemetry=None) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        ctx = _preferred_context()
        self._tasks = ctx.SimpleQueue()
        self._results = ctx.Queue()
        self._next_id = 0
        self._outstanding = 0
        self._telemetry = telemetry
        #: task_id -> (kind, payload), kept for dead-worker resubmission.
        self._payloads: Dict[int, Tuple[str, object]] = {}
        #: Collected task ids (duplicate replies after resubmission are
        #: dropped by membership here).
        self._done_ids: set = set()
        #: Worker indices whose death was already handled.
        self._dead_handled: set = set()
        if telemetry is not None:
            fleet_queue = telemetry.attach(ctx, jobs)
            proc_args = [
                (init, self._tasks, self._results, telemetry.worker_args(i))
                for i in range(jobs)
            ]
            del fleet_queue
        else:
            proc_args = [(init, self._tasks, self._results) for _ in range(jobs)]
        self._procs = [
            ctx.Process(target=_worker_main, args=args, daemon=True)
            for args in proc_args
        ]
        for proc in self._procs:
            proc.start()

    # -- submission / collection ----------------------------------------

    def submit(self, kind: str, payload: object) -> int:
        """Enqueue one task; any idle worker will pull it."""
        task_id = self._next_id
        self._next_id += 1
        self._outstanding += 1
        if self._telemetry is not None:
            self._payloads[task_id] = (kind, payload)
        self._tasks.put((task_id, kind, payload))
        return task_id

    @property
    def outstanding(self) -> int:
        return self._outstanding

    def next_result(self) -> Tuple[int, object]:
        """Block until one submitted task finishes; return (id, result).

        Raises ``RuntimeError`` carrying the worker traceback if the
        task failed, or if a worker process died without replying.
        """
        if self._outstanding <= 0:
            raise RuntimeError("no outstanding tasks to collect")
        import queue as _queue

        tele = self._telemetry
        while True:
            if tele is not None:
                tele.pump()
            try:
                task_id, status, result = self._results.get(timeout=_POLL_S)
            except _queue.Empty:
                if tele is not None:
                    tele.pump()
                    tele.aggregator.sample_queue_depth(self._outstanding)
                    self._recover_dead_workers()
                    continue
                dead = [p for p in self._procs if not p.is_alive()]
                if dead and self._results.empty():
                    raise RuntimeError(
                        f"{len(dead)} worker process(es) died without "
                        f"replying (exit codes "
                        f"{[p.exitcode for p in dead]})"
                    ) from None
                continue
            if task_id in self._done_ids:
                # A resubmitted task's duplicate reply (the original
                # worker managed to put it before dying): drop it.
                continue
            break
        self._done_ids.add(task_id)
        self._payloads.pop(task_id, None)
        self._outstanding -= 1
        if status == "error":
            raise RuntimeError(f"worker task failed:\n{result}")
        return task_id, result

    def _recover_dead_workers(self) -> None:
        """Resubmit in-flight tasks of newly dead workers (telemetry only).

        The bus's claim tracking says exactly which tasks a dead worker
        held; resubmitting them keeps ``outstanding`` honest (the task is
        still the same submission) and lets the surviving workers finish
        the grid.  With *no* survivors and work left, raise — nothing
        will ever drain the queue.
        """
        tele = self._telemetry
        for index, proc in enumerate(self._procs):
            if proc.is_alive() or index in self._dead_handled:
                continue
            self._dead_handled.add(index)
            tele.worker_died(index, proc.exitcode)
            for task_id in tele.aggregator.in_flight(index):
                entry = self._payloads.get(task_id)
                if entry is not None and task_id not in self._done_ids:
                    self._tasks.put((task_id,) + entry)
        if self._outstanding > 0 and self._results.empty() and not any(
            p.is_alive() for p in self._procs
        ):
            raise RuntimeError(
                f"all worker processes died with {self._outstanding} "
                f"task(s) outstanding (exit codes "
                f"{[p.exitcode for p in self._procs]})"
            )

    # -- shutdown --------------------------------------------------------

    def close(self) -> None:
        """Stop the workers (sentinel per worker, then join/terminate)."""
        for _ in self._procs:
            try:
                self._tasks.put(None)
            except (OSError, ValueError):
                break
        for proc in self._procs:
            proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        if self._telemetry is not None:
            # Final drain: the workers' stop events (and any samples
            # raced with shutdown) land in the aggregator.
            self._telemetry.pump()
        self._results.cancel_join_thread()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
