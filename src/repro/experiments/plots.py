"""Dependency-free SVG rendering of the figure artifacts.

The harness's artifacts carry their plotted series; this module turns
them into standalone ``.svg`` files (no matplotlib required — the
environment is offline).  ``python -m repro.experiments figure5 --svg
out/`` writes one chart per artifact.

Only two chart shapes are needed: line charts over a numeric x-axis
(MRCs, thread sweeps) and bar charts over categories (speedups,
overheads).
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ConfigurationError

#: A categorical palette (dark-on-white friendly).
PALETTE = (
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd",
    "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
)

_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 64, 16, 34, 44


def _escape(text: str) -> str:
    return (
        str(text).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _ticks(lo: float, hi: float, count: int = 5) -> List[float]:
    if hi <= lo:
        hi = lo + 1.0
    step = (hi - lo) / max(1, count - 1)
    return [lo + i * step for i in range(count)]


class _Canvas:
    """Assembles SVG fragments with a data-to-pixel transform."""

    def __init__(self, width: int, height: int, title: str) -> None:
        self.width = width
        self.height = height
        self.parts: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}" '
            f'font-family="sans-serif" font-size="11">',
            f'<rect width="{width}" height="{height}" fill="white"/>',
            f'<text x="{width / 2}" y="18" text-anchor="middle" '
            f'font-size="13" font-weight="bold">{_escape(title)}</text>',
        ]
        self.x0, self.y0 = _MARGIN_L, _MARGIN_T
        self.x1, self.y1 = width - _MARGIN_R, height - _MARGIN_B
        self.xlo = self.xhi = self.ylo = self.yhi = 0.0

    def set_scales(self, xlo, xhi, ylo, yhi) -> None:
        pad = 0.05 * (yhi - ylo or 1.0)
        self.xlo, self.xhi = xlo, (xhi if xhi > xlo else xlo + 1)
        self.ylo, self.yhi = ylo - pad, yhi + pad

    def px(self, x: float) -> float:
        return self.x0 + (x - self.xlo) / (self.xhi - self.xlo) * (self.x1 - self.x0)

    def py(self, y: float) -> float:
        return self.y1 - (y - self.ylo) / (self.yhi - self.ylo) * (self.y1 - self.y0)

    def axes(self, xlabel: str, ylabel: str, x_ticks: Sequence[Tuple[float, str]],
             y_ticks: Sequence[Tuple[float, str]]) -> None:
        p = self.parts
        p.append(
            f'<line x1="{self.x0}" y1="{self.y1}" x2="{self.x1}" y2="{self.y1}" '
            f'stroke="black"/>'
        )
        p.append(
            f'<line x1="{self.x0}" y1="{self.y0}" x2="{self.x0}" y2="{self.y1}" '
            f'stroke="black"/>'
        )
        for x, label in x_ticks:
            px = self.px(x)
            p.append(f'<line x1="{px}" y1="{self.y1}" x2="{px}" y2="{self.y1 + 4}" '
                     f'stroke="black"/>')
            p.append(f'<text x="{px}" y="{self.y1 + 16}" text-anchor="middle">'
                     f'{_escape(label)}</text>')
        for y, label in y_ticks:
            py = self.py(y)
            p.append(f'<line x1="{self.x0 - 4}" y1="{py}" x2="{self.x0}" y2="{py}" '
                     f'stroke="black"/>')
            p.append(f'<text x="{self.x0 - 7}" y="{py + 4}" text-anchor="end">'
                     f'{_escape(label)}</text>')
            p.append(f'<line x1="{self.x0}" y1="{py}" x2="{self.x1}" y2="{py}" '
                     f'stroke="#dddddd"/>')
        p.append(
            f'<text x="{(self.x0 + self.x1) / 2}" y="{self.height - 8}" '
            f'text-anchor="middle">{_escape(xlabel)}</text>'
        )
        p.append(
            f'<text x="14" y="{(self.y0 + self.y1) / 2}" text-anchor="middle" '
            f'transform="rotate(-90 14 {(self.y0 + self.y1) / 2})">'
            f'{_escape(ylabel)}</text>'
        )

    def legend(self, names: Sequence[str]) -> None:
        for i, name in enumerate(names):
            color = PALETTE[i % len(PALETTE)]
            y = self.y0 + 6 + 14 * i
            self.parts.append(
                f'<line x1="{self.x1 - 110}" y1="{y}" x2="{self.x1 - 92}" '
                f'y2="{y}" stroke="{color}" stroke-width="2"/>'
            )
            self.parts.append(
                f'<text x="{self.x1 - 88}" y="{y + 4}">{_escape(name)}</text>'
            )

    def finish(self) -> str:
        return "\n".join(self.parts) + "\n</svg>\n"


def svg_line_chart(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    title: str,
    xlabel: str = "",
    ylabel: str = "",
    width: int = 640,
    height: int = 400,
) -> str:
    """Render named ``(xs, ys)`` series as an SVG line chart."""
    if not series:
        raise ConfigurationError("a chart needs at least one series")
    all_x = [x for xs, _ in series.values() for x in xs]
    all_y = [y for _, ys in series.values() for y in ys]
    if not all_x:
        raise ConfigurationError("series contain no points")
    canvas = _Canvas(width, height, title)
    canvas.set_scales(min(all_x), max(all_x), min(min(all_y), 0.0), max(all_y))
    canvas.axes(
        xlabel,
        ylabel,
        [(t, f"{t:g}") for t in _ticks(min(all_x), max(all_x))],
        [(t, f"{t:.3g}") for t in _ticks(canvas.ylo, canvas.yhi)],
    )
    for i, (name, (xs, ys)) in enumerate(series.items()):
        color = PALETTE[i % len(PALETTE)]
        points = " ".join(f"{canvas.px(x):.1f},{canvas.py(y):.1f}"
                          for x, y in zip(xs, ys))
        canvas.parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        for x, y in zip(xs, ys):
            canvas.parts.append(
                f'<circle cx="{canvas.px(x):.1f}" cy="{canvas.py(y):.1f}" '
                f'r="2.5" fill="{color}"/>'
            )
    canvas.legend(list(series))
    return canvas.finish()


def svg_bar_chart(
    categories: Sequence[str],
    series: Dict[str, Sequence[float]],
    title: str,
    ylabel: str = "",
    width: int = 820,
    height: int = 400,
) -> str:
    """Render grouped bars per category as an SVG bar chart."""
    if not series or not categories:
        raise ConfigurationError("a bar chart needs categories and series")
    all_y = [y for ys in series.values() for y in ys]
    canvas = _Canvas(width, height, title)
    canvas.set_scales(0, len(categories), min(0.0, min(all_y)), max(all_y))
    canvas.axes(
        "",
        ylabel,
        [],
        [(t, f"{t:.3g}") for t in _ticks(canvas.ylo, canvas.yhi)],
    )
    group_w = (canvas.x1 - canvas.x0) / len(categories)
    bar_w = group_w * 0.8 / len(series)
    for c, cat in enumerate(categories):
        for s, (name, ys) in enumerate(series.items()):
            color = PALETTE[s % len(PALETTE)]
            x = canvas.x0 + c * group_w + group_w * 0.1 + s * bar_w
            y = canvas.py(ys[c])
            base = canvas.py(max(0.0, canvas.ylo))
            canvas.parts.append(
                f'<rect x="{x:.1f}" y="{min(y, base):.1f}" width="{bar_w:.1f}" '
                f'height="{abs(base - y):.1f}" fill="{color}"/>'
            )
        cx = canvas.x0 + (c + 0.5) * group_w
        canvas.parts.append(
            f'<text x="{cx:.1f}" y="{canvas.y1 + 14}" text-anchor="end" '
            f'transform="rotate(-30 {cx:.1f} {canvas.y1 + 14})">'
            f'{_escape(cat)}</text>'
        )
    canvas.legend(list(series))
    return canvas.finish()


def render_artifact_svg(artifact) -> Dict[str, str]:
    """Turn an artifact's series into one or more SVG documents.

    Returns ``{filename: svg_text}``.  Artifacts with numeric x-axes
    become line charts (one per panel for the multi-panel Fig. 7);
    categorical ones become grouped bar charts.
    """
    name = artifact.name
    out: Dict[str, str] = {}
    if name == "figure2":
        s = artifact.series["miss_ratio"]
        out[f"{name}.svg"] = svg_line_chart(
            {"miss ratio": (s["x"], s["y"])},
            artifact.title, "cache size", "miss ratio",
        )
    elif name == "figure7":
        for prog, s in artifact.series.items():
            out[f"{name}_{prog}.svg"] = svg_line_chart(
                {
                    "actual": (s["x"], s["actual"]),
                    "full-trace": (s["x"], s["full_trace"]),
                    "sampled": (s["x"], s["sampled"]),
                },
                f"{artifact.title} — {prog}", "cache size", "miss ratio",
            )
    elif name in ("figure5", "figure6"):
        key = "slowdown" if name == "figure6" else "sc_over_at"
        series = {
            prog: (s["x"], s[key]) for prog, s in artifact.series.items()
        }
        out[f"{name}.svg"] = svg_line_chart(
            series, artifact.title, "threads",
            "SC/BEST slowdown" if name == "figure6" else "speedup over AT",
        )
    elif name in ("figure4", "figure8"):
        first = next(iter(artifact.series.values()))
        categories = [str(v) for v in first["x"]]
        series = {label: s["y"] for label, s in artifact.series.items()}
        out[f"{name}.svg"] = svg_bar_chart(
            categories, series, artifact.title,
            "overhead %" if name == "figure8" else "speedup over ER",
        )
    else:
        raise ConfigurationError(f"no SVG rendering for artifact {name!r}")
    return out


def write_artifact_svgs(artifact, directory: str) -> List[str]:
    """Render and write an artifact's charts; return the paths written."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for filename, svg in render_artifact_svg(artifact).items():
        path = os.path.join(directory, filename)
        with open(path, "w") as fh:
            fh.write(svg)
        paths.append(path)
    return paths
