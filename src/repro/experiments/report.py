"""Regenerate EXPERIMENTS.md: paper-vs-measured for every artifact."""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.figures import (
    figure2,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
)
from repro.experiments.harness import Harness, HarnessConfig
from repro.experiments.tables import (
    Artifact,
    adaptation,
    policyzoo,
    table1,
    table2,
    table3,
    table4,
)

#: Artifact id -> generator.  Thread-sweep artifacts accept a reduced
#: thread list at small scales through their keyword arguments.
GENERATORS: Dict[str, Callable[[Harness], Artifact]] = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "adaptation": adaptation,
    "policyzoo": policyzoo,
    "figure2": figure2,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
}

#: Narrative context written above each artifact in EXPERIMENTS.md.
_NOTES = {
    "table1": "Expected shape: order-of-magnitude slowdowns from eager "
              "flushing (paper average 22x).",
    "table2": "Expected shape: ER slowest; AT ~3x; SC between AT and "
              "SC-offline; BEST fastest.",
    "table3": "Expected shape: ER=1; LA is the floor; SC tracks LA far "
              "closer than AT; SC=LA where the paper says so "
              "(linked-list, queue, volrend, persistent-array).",
    "table4": "Expected shape: SC instructions ~8% above AT; SC flush "
              "ratio ~an order below AT, rising slightly with threads; "
              "L1 miss ratios rise with threads for all techniques.",
    "adaptation": "Expected shape: the online history converges after "
                  "one or two selections, and the final size lands on "
                  "(or within a couple of lines of) the offline knee.",
    "policyzoo": "Expected shape: every composed policy stays within a "
                 "few percent of plain SC on time; nhit/cutoff shift "
                 "flushes into the bypass column without raising the "
                 "total ratio much; clean keeps totals flat while "
                 "moving evictions to idle quanta; victim absorbs "
                 "re-referenced evictions.",
    "figure2": "Expected shape: sharp drop at the knee near 23; flat "
               "beyond.",
    "figure4": "Expected shape: BEST > SC-offline >= SC > AT > ER = 1 "
               "for every benchmark.",
    "figure5": "Expected shape: SC above 1x versus AT almost everywhere; "
               "advantage narrows at high thread counts under cache "
               "contention.",
    "figure6": "Expected shape: modest slowdowns over BEST, roughly flat "
               "in thread count.",
    "figure7": "Expected shape: sampled and full-trace MRCs share "
               "inflection points with the measured (actual) curve, so "
               "selection agrees.",
    "figure8": "Expected shape: single-digit percentage overheads (paper "
               "average 6.78%).",
}

DEVIATIONS = """
## Known deviations from the paper (and why)

| Where | Paper | Measured here | Cause |
|---|---|---|---|
| Table I, ocean | 17x | ~8-10x | ocean's BEST run already suffers hardware-cache misses on our 512-line L1 (big streaming working set), inflating the baseline the slowdown divides by. |
| Table II, SC vs SC-offline | SC-offline 10% faster | roughly tied | Our whole-trace MRC of the scaled mdb store is smoother than the paper's, so offline knee selection is less decisive; the online burst happens to sample a crisper window. |
| Table III, mdb + hash rows | LA .052/.50, AT .30/.62 | LA ~.09/.57, AT ~.21/.65 | Page/bucket-granularity write amplification of the scaled stores differs from the C originals; orderings (LA < SC <= AT) and the SC knee position are preserved. |
| Fig. 4, SC-over-AT average | 2.1x | ~1.3x | Our flush engine still grants the Atlas table partial overlap of sparse flushes with computation; on the paper's platform each clflush cost closer to its full serialised latency. The ordering (SC uniformly >= AT single-threaded) is preserved. |
| Table IV, AT L1 miss ratios | rise 58% -> 76% with threads | flat ~7% | Our AT's L1 misses are invalidation-dominated (flush ratio x refill); the paper's also absorbed scheduling/contention effects we only model for capacity. BEST/SC rows do rise with threads as published. |
| Fig. 8 averages | 6.78% | ~10-20% at small scales | Our sampling burst is a much larger *fraction* of the scaled runs than 64M writes was of the paper's full-size runs; the absolute adaptation cost is linear in the burst either way. |
| fmm selected size | 10 | 11-16 depending on budget | fmm's MRC has two near-equal shelves; the largest-size tie-break is legitimately unstable between them, and both selections achieve the same flush ratio. |

Everything else in this file tracks the published numbers to within a
few percent (flush ratios, knee positions, slowdown magnitudes,
orderings, crossovers).
"""

HEADER = """# EXPERIMENTS — paper vs. measured

Regenerated by ``python -m repro.experiments all --write`` (see
DESIGN.md for the per-experiment index and the substitution notes).
Numbers in parentheses inside tables are the paper's published values.
Absolute times are *model cycles* from the simulator's cost model —
only the relative shapes are comparable with the paper's wall-clock
measurements.

- scale = {scale}
- seed = {seed}
- generated in {elapsed:.0f} s

"""


def generate(
    harness: Optional[Harness] = None,
    artifacts: Optional[Sequence[str]] = None,
    write_path: Optional[str] = None,
    svg_dir: Optional[str] = None,
) -> str:
    """Produce (and optionally write) the EXPERIMENTS.md content."""
    harness = harness or Harness(HarnessConfig())
    names = list(artifacts or GENERATORS)
    start = time.time()
    blocks: List[str] = []
    for name in names:
        art = GENERATORS[name](harness)
        note = _NOTES.get(name, "")
        blocks.append(f"## {art.title}\n\n{note}\n\n```\n{art.text}\n```\n")
        if svg_dir and name.startswith("figure"):
            from repro.experiments.plots import write_artifact_svgs

            write_artifact_svgs(art, svg_dir)
    body = (
        HEADER.format(
            scale=harness.config.scale,
            seed=harness.config.seed,
            elapsed=time.time() - start,
        )
        + "\n".join(blocks)
        + DEVIATIONS
    )
    if write_path:
        with open(write_path, "w") as fh:
            fh.write(body)
    return body
