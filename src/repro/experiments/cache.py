"""On-disk memoization of experiment runs.

Every harness cell — one ``(workload, technique, threads)`` run under a
fixed :class:`~repro.experiments.harness.HarnessConfig` — is
deterministic, so its result can be cached on disk and shared across
processes and invocations.  Entries are keyed by the SHA-256 of a
canonical-JSON description of the cell *and* the full configuration
(timing model, L1 geometry, selection policy, scale, seed, plus a schema
version), so any knob change silently misses instead of serving stale
results.

The cache stores plain JSON (``RunResult.to_dict``); recorded traces are
never cached — profile runs store a compact :class:`ProfileSummary`
instead (see ``harness.py``).  Writes are atomic (temp file + rename) so
parallel workers racing on the same key at worst both compute and one
wins the rename; both outcomes are identical by determinism.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

#: Bump whenever serialized content or key derivation changes shape.
#: 2: ThreadStats gained the policy-stage flush counters
#: (clean/bypass/victim) and technique cells are canonical spec strings.
SCHEMA_VERSION = 2


def _canonical(obj) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def config_fingerprint(config) -> Dict:
    """A plain-dict description of a HarnessConfig for key derivation.

    ``dataclasses.asdict`` recurses into the frozen ``TimingModel`` and
    ``SelectionPolicy`` members, so every timing/selection knob lands in
    the key.
    """
    return dataclasses.asdict(config)


class ResultCache:
    """A directory of content-addressed JSON entries.

    One file per entry, named ``<sha256>.json``.  The cache never
    invalidates: keys embed everything the value depends on.
    """

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir

    # -- keys -----------------------------------------------------------

    @staticmethod
    def key(config, kind: str, **cell) -> str:
        """The cache key for one cell under one configuration.

        ``kind`` namespaces entry types ("run" vs "profile_summary");
        ``cell`` holds the cell coordinates (name/technique/threads).
        """
        payload = {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "config": config_fingerprint(config),
            "cell": cell,
        }
        return hashlib.sha256(_canonical(payload).encode()).hexdigest()

    # -- I/O ------------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")

    def get(self, key: str) -> Optional[Dict]:
        """The stored dict for ``key``, or ``None`` on miss/corruption."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            # A torn or unreadable entry is a miss, not an error: the
            # caller recomputes and overwrites it.
            return None

    def put(self, key: str, value: Dict) -> None:
        """Atomically store ``value`` (a JSON-serializable dict)."""
        os.makedirs(self.cache_dir, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.cache_dir, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(value, fh, sort_keys=True)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
