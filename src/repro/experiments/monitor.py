"""The ``monitor`` CLI artifact: watch a grid or a trace file live.

Two modes, one pipeline (DESIGN.md §12):

- **grid mode** (default) attaches to a harness grid via the rich
  progress hook — each finished cell's metric snapshot
  (:func:`repro.obs.live.snapshot_from_result`) flows into the
  :class:`~repro.obs.live.AlertEngine` and onto a periodically
  refreshing terminal dashboard, including cells computed by ``--jobs``
  worker processes (snapshots are derived parent-side from the shipped
  results, so nothing extra crosses the process boundary);
- **follow mode** (``--follow PATH``) tails a schema-3 JSONL trace file
  as it is being written — e.g. a :class:`~repro.obs.live.StreamingRecorder`
  spill from another process — feeding every event into a
  :class:`~repro.obs.live.StreamingProfile` whose closed cycle-windows
  drive the same alert rules and dashboard.

``--once`` runs headless: process everything available, render one
final dashboard (or ``--json`` the machine-readable summary) and exit —
the CI smoke path.  ``--fail-on`` gates the exit code on the worst
alert severity, mirroring the ``profile`` artifact's diagnosis gate.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Dict, IO, List, Optional

from repro.common.errors import ConfigurationError
from repro.obs.analyze import SEVERITIES
from repro.obs.live import (
    DEFAULT_WINDOW_CYCLES,
    AlertEngine,
    AlertRule,
    StreamingProfile,
    default_rules,
    parse_rule,
)
from repro.obs.trace import (
    LEGACY_ARG_NAMES,
    TRACE_META_KIND,
    TRACE_SCHEMA_VERSION,
    V1_ARG_DEFAULTS,
)
from repro.obs.trace import _ARG_COLUMNS as ARG_COLUMNS

#: How many recent rows (cells or windows) the dashboard shows.
DASHBOARD_ROWS = 10

#: Seconds between file polls in follow mode.
FOLLOW_POLL_SECONDS = 0.2


def build_rules(rule_strings: Optional[List[str]]) -> List[AlertRule]:
    """The effective rule set: defaults, overridden by name.

    Each ``--rule`` string is parsed with the grammar in
    :func:`repro.obs.live.parse_rule`; a parsed rule whose name matches
    a default replaces it, anything else is added.
    """
    rules = {r.name: r for r in default_rules()}
    for text in rule_strings or []:
        rule = parse_rule(text)
        rules[rule.name] = rule
    return list(rules.values())


def _alert_gate(engine: AlertEngine, fail_on: str) -> int:
    """Exit code under the ``--fail-on`` policy (mirrors `profile`)."""
    if fail_on == "never":
        return 0
    worst = engine.max_severity()
    if worst is None:
        return 0
    return 1 if SEVERITIES.index(worst) >= SEVERITIES.index(fail_on) else 0


def _alert_lines(engine: AlertEngine) -> List[str]:
    counts = {s: 0 for s in SEVERITIES}
    for a in engine.alerts:
        counts[a.severity] += 1
    summary = ", ".join(f"{counts[s]} {s}" for s in reversed(SEVERITIES))
    lines = [f"alerts: {summary}" if engine.alerts else "alerts: none"]
    for a in engine.by_severity()[:5]:
        lines.append(f"  [{a.severity}] {a.rule}: {a.message}")
    return lines


class _Dashboard:
    """Rate-limited terminal renderer shared by both modes."""

    def __init__(self, stream: IO[str], refresh: float, live: bool) -> None:
        self.stream = stream
        self.refresh = refresh
        self.live = live
        self._last_draw = 0.0

    def draw(self, lines: List[str], force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_draw < self.refresh:
            return
        self._last_draw = now
        out = self.stream
        if self.live and out.isatty():
            out.write("\x1b[2J\x1b[H")
        out.write("\n".join(lines) + "\n")
        out.flush()


# ---------------------------------------------------------------------------
# grid mode
# ---------------------------------------------------------------------------


def monitor_grid(
    harness: object,
    artifact: str,
    *,
    jobs: int = 1,
    engine: AlertEngine,
    refresh: float = 1.0,
    once: bool = False,
    stream: Optional[IO[str]] = None,
) -> Dict:
    """Run one artifact's grid under live monitoring; return the summary."""
    from repro.experiments.parallel import grid_for

    cells = grid_for(harness, artifact)
    if not cells:
        raise ConfigurationError(
            f"artifact {artifact!r} has no precomputable run grid to monitor"
        )
    stream = stream if stream is not None else sys.stderr
    board = _Dashboard(stream, refresh, live=not once)
    snapshots: List[Dict] = []
    started = time.monotonic()

    def render(force: bool = False) -> None:
        lines = [
            f"repro live monitor — grid {artifact} "
            f"({len(snapshots)}/{len(cells)} cells, jobs={jobs}, "
            f"{time.monotonic() - started:.1f}s)",
        ]
        lines.extend(_alert_lines(engine))
        if snapshots:
            lines.append("")
            lines.append(
                f"{'cell':32} {'cycles':>12} {'stall%':>7} "
                f"{'flush':>7} {'sel':>4} {'fases':>6}"
            )
            for s in snapshots[-DASHBOARD_ROWS:]:
                lines.append(
                    f"{s['cell']:32} {s['cycles']:>12} "
                    f"{100.0 * s['stall_share']:>6.2f}% "
                    f"{s['flush_ratio']:>7.4f} {s['selections']:>4} "
                    f"{s['fases']:>6}"
                )
        board.draw(lines, force=force)

    def on_cell(done: int, total: int, cell, snapshot: Dict) -> None:
        snapshot = dict(snapshot)
        snapshot["index"] = done - 1
        snapshots.append(snapshot)
        engine.observe_window(snapshot, source=snapshot["cell"])
        if not once:
            render()

    harness.run_grid(cells, jobs=jobs, progress=on_cell)
    if not once:
        render(force=True)
    return {
        "mode": "grid",
        "artifact": artifact,
        "cells_total": len(cells),
        "cells_done": len(snapshots),
        "snapshots": snapshots,
        "alerts": [a.to_dict() for a in engine.alerts],
        "max_severity": engine.max_severity(),
    }


# ---------------------------------------------------------------------------
# follow mode
# ---------------------------------------------------------------------------


class TraceTailer:
    """Incrementally parse a JSONL trace file that may still be written.

    Feeds complete lines into the profile as they appear, holding back
    a trailing partial line until its newline arrives.  Unknown event
    kinds are a hard error (same contract as
    :func:`repro.obs.trace.parse_jsonl`); renamed schema-2 fields read
    back through :data:`~repro.obs.trace.LEGACY_ARG_NAMES`, and fields
    absent from a schema-1 file decode to their documented defaults.
    """

    def __init__(self, path: str, profile: StreamingProfile) -> None:
        self.path = path
        self.profile = profile
        self.schema = TRACE_SCHEMA_VERSION
        self.events = 0
        self.lines = 0
        self._buf = ""
        self._fh = open(path, "r", encoding="utf-8")

    def poll(self) -> int:
        """Consume everything newly readable; return events ingested."""
        chunk = self._fh.read()
        if not chunk:
            return 0
        self._buf += chunk
        ingested = 0
        while True:
            nl = self._buf.find("\n")
            if nl < 0:
                break
            line = self._buf[:nl].strip()
            self._buf = self._buf[nl + 1 :]
            if not line:
                continue
            self.lines += 1
            if self._ingest(line):
                ingested += 1
        return ingested

    def _ingest(self, line: str) -> bool:
        try:
            doc = json.loads(line)
        except ValueError as exc:
            raise ConfigurationError(
                f"{self.path} line {self.lines}: not JSON ({exc})"
            ) from None
        kind = doc.get("kind")
        if kind == TRACE_META_KIND:
            self.schema = int(doc.get("schema", TRACE_SCHEMA_VERSION))
            return False
        if kind not in ARG_COLUMNS:
            raise ConfigurationError(
                f"{self.path} line {self.lines}: unknown event kind {kind!r}"
            )
        cols = [0, 0, 0]
        for name, idx in ARG_COLUMNS[kind].items():
            if name in doc:
                cols[idx] = doc[name]
                continue
            legacy = LEGACY_ARG_NAMES.get((kind, name))
            if legacy is not None and legacy in doc:
                cols[idx] = doc[legacy]
            else:
                cols[idx] = V1_ARG_DEFAULTS.get((kind, name), 0)
        self.profile.record(kind, doc["tid"], doc["ts"], cols[0], cols[1], cols[2])
        self.events += 1
        return True

    def close(self) -> None:
        self._fh.close()


def monitor_follow(
    path: str,
    *,
    engine: AlertEngine,
    window_cycles: int = DEFAULT_WINDOW_CYCLES,
    refresh: float = 1.0,
    once: bool = False,
    stream: Optional[IO[str]] = None,
    max_idle_seconds: Optional[float] = None,
) -> Dict:
    """Tail a JSONL trace, folding it live; return the summary.

    With ``once`` the file is drained to its current end and finalized
    (remaining partial window folded, analyzer diagnoses forwarded to
    the alert engine).  Otherwise the tail keeps polling until
    interrupted or until no new bytes arrive for ``max_idle_seconds``.
    """
    stream = stream if stream is not None else sys.stderr
    board = _Dashboard(stream, refresh, live=not once)

    profile = StreamingProfile(window_cycles)
    profile.on_window = lambda snap: engine.observe_window(snap, source=path)
    tailer = TraceTailer(path, profile)

    def render(force: bool = False) -> None:
        fold = profile.fold
        lines = [
            f"repro live monitor — following {path} "
            f"(window {window_cycles} cycles)",
            f"events: {tailer.events}  windows closed: {profile.windows_closed}  "
            f"write-amp: {fold.prov.write_amplification:.3f}  "
            f"stall share: {fold.fase.stall_share:.3f}",
        ]
        lines.extend(_alert_lines(engine))
        snaps = list(profile.snapshots)[-DASHBOARD_ROWS:]
        if snaps:
            lines.append("")
            lines.append(
                f"{'window':>6} {'events':>8} {'evflush':>8} {'drains':>7} "
                f"{'stallcy':>9} {'sel':>4} {'wamp':>7} {'stall%':>7}"
            )
            for s in snaps:
                lines.append(
                    f"{s.index:>6} {s.events:>8} {s.evict_flushes:>8} "
                    f"{s.fase_drains:>7} {s.stall_cycles:>9} {s.selections:>4} "
                    f"{s.write_amplification:>7.3f} "
                    f"{100.0 * s.stall_share:>6.2f}%"
                )
        board.draw(lines, force=force)

    idle_since: Optional[float] = None
    try:
        while True:
            got = tailer.poll()
            if got:
                idle_since = None
                if not once:
                    render()
            elif once:
                break
            else:
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                elif (
                    max_idle_seconds is not None
                    and now - idle_since >= max_idle_seconds
                ):
                    break
                render()
                time.sleep(FOLLOW_POLL_SECONDS)
    except KeyboardInterrupt:
        pass
    finally:
        tailer.close()

    final = profile.finalize(schema=tailer.schema)
    engine.observe_diagnoses(final.diagnoses, source=path)
    if not once:
        render(force=True)
    return {
        "mode": "follow",
        "path": path,
        "events": tailer.events,
        "windows_closed": profile.windows_closed,
        "profile": final.to_dict(),
        "alerts": [a.to_dict() for a in engine.alerts],
        "max_severity": engine.max_severity(),
    }


# ---------------------------------------------------------------------------
# CLI glue
# ---------------------------------------------------------------------------


def run_monitor(args, harness_factory) -> int:
    """Drive the ``monitor`` artifact from parsed CLI args.

    ``harness_factory`` defers harness construction to grid mode, so
    ``--follow`` never builds workloads it will not run.
    """
    try:
        rules = build_rules(args.rule)
    except ConfigurationError as exc:
        print(f"monitor: {exc}", file=sys.stderr)
        return 2
    with AlertEngine(rules, log_path=args.alert_log) as engine:
        try:
            if args.follow:
                summary = monitor_follow(
                    args.follow,
                    engine=engine,
                    window_cycles=args.window,
                    refresh=args.refresh,
                    once=args.once,
                    max_idle_seconds=args.max_idle,
                )
            else:
                summary = monitor_grid(
                    harness_factory(),
                    args.grid,
                    jobs=args.jobs,
                    engine=engine,
                    refresh=args.refresh,
                    once=args.once,
                )
        except (ConfigurationError, OSError) as exc:
            print(f"monitor: {exc}", file=sys.stderr)
            return 2
        if args.json_out:
            payload = json.dumps(summary, sort_keys=True, indent=1) + "\n"
            if args.json_out == "-":
                sys.stdout.write(payload)
            else:
                with open(args.json_out, "w", encoding="utf-8") as fh:
                    fh.write(payload)
                print(f"wrote {args.json_out}", file=sys.stderr)
        elif args.once:
            for line in _alert_lines(engine):
                print(line)
            if summary["mode"] == "grid":
                print(
                    f"monitored {summary['cells_done']}/"
                    f"{summary['cells_total']} cells of {summary['artifact']}"
                )
            else:
                print(
                    f"followed {summary['path']}: {summary['events']} events, "
                    f"{summary['windows_closed']} windows"
                )
        if args.alert_log:
            print(f"alert log: {args.alert_log}", file=sys.stderr)
        return _alert_gate(engine, args.fail_on)
