"""The ``monitor`` CLI artifact: watch a grid, a fleet, or a trace live.

Modes, one pipeline (DESIGN.md §12 and §15):

- **grid mode** (default) attaches to a harness grid via the rich
  progress hook — each finished cell's metric snapshot
  (:func:`repro.obs.live.snapshot_from_result`) flows into the
  :class:`~repro.obs.live.AlertEngine` and onto a periodically
  refreshing terminal dashboard, including cells computed by ``--jobs``
  worker processes (snapshots are derived parent-side from the shipped
  results, so nothing extra crosses the process boundary);
- **follow mode** (``--follow PATH``) tails a schema-3 JSONL trace file
  as it is being written — e.g. a :class:`~repro.obs.live.StreamingRecorder`
  spill from another process — feeding every event into a
  :class:`~repro.obs.live.StreamingProfile` whose closed cycle-windows
  drive the same alert rules and dashboard;
- **fleet mode** (``--fleet``, DESIGN.md §15) watches the *worker pool*
  instead of the simulated machine: a ``--jobs N`` grid (or, with
  ``--campaign``, a crash campaign) runs with the
  :mod:`repro.obs.fleet` telemetry bus attached, and the dashboard
  shows per-worker rows — current task, throughput, RSS/CPU — with
  fleet alert rules (dead worker, straggler ratio, RSS ceiling).
  ``--fleet --follow PATH`` tails a fleet JSONL *spill* from another
  process through the identical aggregator fold; ``--span-export``
  writes the deterministic Perfetto scheduler timeline.

``--once`` runs headless: process everything available, render one
final dashboard (or ``--json`` the machine-readable summary) and exit —
the CI smoke path.  ``--fail-on`` gates the exit code on the worst
alert severity, mirroring the ``profile`` artifact's diagnosis gate.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, IO, List, Optional

from repro.common.errors import ConfigurationError
from repro.obs.analyze import SEVERITIES
from repro.obs.live import (
    DEFAULT_WINDOW_CYCLES,
    AlertEngine,
    AlertRule,
    StreamingProfile,
    default_rules,
    parse_rule,
)
from repro.obs.trace import (
    LEGACY_ARG_NAMES,
    TRACE_META_KIND,
    TRACE_SCHEMA_VERSION,
    V1_ARG_DEFAULTS,
)
from repro.obs.trace import _ARG_COLUMNS as ARG_COLUMNS

#: How many recent rows (cells or windows) the dashboard shows.
DASHBOARD_ROWS = 10

#: Seconds between file polls in follow mode.
FOLLOW_POLL_SECONDS = 0.2


def build_rules(
    rule_strings: Optional[List[str]],
    base: Optional[List[AlertRule]] = None,
) -> List[AlertRule]:
    """The effective rule set: defaults, overridden by name.

    Each ``--rule`` string is parsed with the grammar in
    :func:`repro.obs.live.parse_rule`; a parsed rule whose name matches
    a default replaces it, anything else is added.  ``base`` swaps the
    single-run defaults for another stock set — fleet mode passes
    :func:`repro.obs.fleet.fleet_rules`.
    """
    rules = {r.name: r for r in (default_rules() if base is None else base)}
    for text in rule_strings or []:
        rule = parse_rule(text)
        rules[rule.name] = rule
    return list(rules.values())


def _alert_gate(engine: AlertEngine, fail_on: str) -> int:
    """Exit code under the ``--fail-on`` policy (mirrors `profile`)."""
    if fail_on == "never":
        return 0
    worst = engine.max_severity()
    if worst is None:
        return 0
    return 1 if SEVERITIES.index(worst) >= SEVERITIES.index(fail_on) else 0


def _alert_lines(engine: AlertEngine) -> List[str]:
    counts = {s: 0 for s in SEVERITIES}
    for a in engine.alerts:
        counts[a.severity] += 1
    summary = ", ".join(f"{counts[s]} {s}" for s in reversed(SEVERITIES))
    lines = [f"alerts: {summary}" if engine.alerts else "alerts: none"]
    for a in engine.by_severity()[:5]:
        lines.append(f"  [{a.severity}] {a.rule}: {a.message}")
    return lines


class _Dashboard:
    """Rate-limited terminal renderer shared by both modes."""

    def __init__(self, stream: IO[str], refresh: float, live: bool) -> None:
        self.stream = stream
        self.refresh = refresh
        self.live = live
        self._last_draw = 0.0

    def draw(self, lines: List[str], force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_draw < self.refresh:
            return
        self._last_draw = now
        out = self.stream
        if self.live and out.isatty():
            out.write("\x1b[2J\x1b[H")
        out.write("\n".join(lines) + "\n")
        out.flush()


# ---------------------------------------------------------------------------
# grid mode
# ---------------------------------------------------------------------------


def monitor_grid(
    harness: object,
    artifact: str,
    *,
    jobs: int = 1,
    engine: AlertEngine,
    refresh: float = 1.0,
    once: bool = False,
    stream: Optional[IO[str]] = None,
) -> Dict:
    """Run one artifact's grid under live monitoring; return the summary."""
    from repro.experiments.parallel import grid_for

    cells = grid_for(harness, artifact)
    if not cells:
        raise ConfigurationError(
            f"artifact {artifact!r} has no precomputable run grid to monitor"
        )
    stream = stream if stream is not None else sys.stderr
    board = _Dashboard(stream, refresh, live=not once)
    snapshots: List[Dict] = []
    started = time.monotonic()

    def render(force: bool = False) -> None:
        lines = [
            f"repro live monitor — grid {artifact} "
            f"({len(snapshots)}/{len(cells)} cells, jobs={jobs}, "
            f"{time.monotonic() - started:.1f}s)",
        ]
        lines.extend(_alert_lines(engine))
        if snapshots:
            lines.append("")
            lines.append(
                f"{'cell':32} {'cycles':>12} {'stall%':>7} "
                f"{'flush':>7} {'sel':>4} {'fases':>6}"
            )
            for s in snapshots[-DASHBOARD_ROWS:]:
                lines.append(
                    f"{s['cell']:32} {s['cycles']:>12} "
                    f"{100.0 * s['stall_share']:>6.2f}% "
                    f"{s['flush_ratio']:>7.4f} {s['selections']:>4} "
                    f"{s['fases']:>6}"
                )
        board.draw(lines, force=force)

    def on_cell(done: int, total: int, cell, snapshot: Dict) -> None:
        snapshot = dict(snapshot)
        snapshot["index"] = done - 1
        snapshots.append(snapshot)
        engine.observe_window(snapshot, source=snapshot["cell"])
        if not once:
            render()

    harness.run_grid(cells, jobs=jobs, progress=on_cell)
    if not once:
        render(force=True)
    return {
        "mode": "grid",
        "artifact": artifact,
        "cells_total": len(cells),
        "cells_done": len(snapshots),
        "snapshots": snapshots,
        "alerts": [a.to_dict() for a in engine.alerts],
        "max_severity": engine.max_severity(),
    }


# ---------------------------------------------------------------------------
# follow mode
# ---------------------------------------------------------------------------


class _LineTailer:
    """Buffered line-at-a-time tail of a JSONL file being written.

    Holds back a trailing partial line until its newline arrives, and —
    unlike a plain open file handle — survives the file being truncated,
    rotated (replaced by a new inode) or briefly absent mid-follow: the
    tailer notices via ``os.stat`` on the *path*, reopens from offset 0,
    and drops its partial-line buffer (the old file's bytes).  Subclasses
    implement ``_ingest(line) -> bool`` (True when the line counted as an
    event).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.events = 0
        self.lines = 0
        self._buf = ""
        self._fh: Optional[IO[str]] = open(path, "r", encoding="utf-8")
        self._ino = os.fstat(self._fh.fileno()).st_ino

    def _reopen_if_rotated(self) -> None:
        try:
            st = os.stat(self.path)
        except FileNotFoundError:
            # Mid-rotation: the writer unlinked but has not recreated
            # yet.  Drop the handle; the next poll retries the open.
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            return
        if self._fh is None:
            self._fh = open(self.path, "r", encoding="utf-8")
            self._ino = st.st_ino
            self._buf = ""
            return
        if st.st_ino != self._ino or st.st_size < self._fh.tell():
            # Rotated to a new inode, or truncated in place: restart
            # from the top of whatever the path names now.
            self._fh.close()
            self._fh = open(self.path, "r", encoding="utf-8")
            self._ino = os.fstat(self._fh.fileno()).st_ino
            self._buf = ""

    def poll(self) -> int:
        """Consume everything newly readable; return events ingested."""
        self._reopen_if_rotated()
        if self._fh is None:
            return 0
        chunk = self._fh.read()
        if not chunk:
            return 0
        self._buf += chunk
        ingested = 0
        while True:
            nl = self._buf.find("\n")
            if nl < 0:
                break
            line = self._buf[:nl].strip()
            self._buf = self._buf[nl + 1 :]
            if not line:
                continue
            self.lines += 1
            if self._ingest(line):
                ingested += 1
        return ingested

    def _ingest(self, line: str) -> bool:
        raise NotImplementedError

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class TraceTailer(_LineTailer):
    """Incrementally parse a JSONL trace file that may still be written.

    Feeds complete lines into the profile as they appear, holding back
    a trailing partial line until its newline arrives.  Unknown event
    kinds are a hard error (same contract as
    :func:`repro.obs.trace.parse_jsonl`); renamed schema-2 fields read
    back through :data:`~repro.obs.trace.LEGACY_ARG_NAMES`, and fields
    absent from a schema-1 file decode to their documented defaults.
    """

    def __init__(self, path: str, profile: StreamingProfile) -> None:
        super().__init__(path)
        self.profile = profile
        self.schema = TRACE_SCHEMA_VERSION

    def _ingest(self, line: str) -> bool:
        try:
            doc = json.loads(line)
        except ValueError as exc:
            raise ConfigurationError(
                f"{self.path} line {self.lines}: not JSON ({exc})"
            ) from None
        kind = doc.get("kind")
        if kind == TRACE_META_KIND:
            self.schema = int(doc.get("schema", TRACE_SCHEMA_VERSION))
            return False
        if kind not in ARG_COLUMNS:
            raise ConfigurationError(
                f"{self.path} line {self.lines}: unknown event kind {kind!r}"
            )
        cols = [0, 0, 0]
        for name, idx in ARG_COLUMNS[kind].items():
            if name in doc:
                cols[idx] = doc[name]
                continue
            legacy = LEGACY_ARG_NAMES.get((kind, name))
            if legacy is not None and legacy in doc:
                cols[idx] = doc[legacy]
            else:
                cols[idx] = V1_ARG_DEFAULTS.get((kind, name), 0)
        self.profile.record(kind, doc["tid"], doc["ts"], cols[0], cols[1], cols[2])
        self.events += 1
        return True


class FleetTailer(_LineTailer):
    """Tail a fleet JSONL spill, folding events into an aggregator.

    The offline twin of the attached fleet monitor: the aggregator's
    fold is identical whether events arrive over the bus or from the
    spill (:class:`repro.obs.fleet.FleetAggregator.observe` accepts
    both), so a ``--fleet --follow`` dashboard shows the same state the
    producing process saw.
    """

    def __init__(self, path: str, aggregator) -> None:
        super().__init__(path)
        self.aggregator = aggregator

    def _ingest(self, line: str) -> bool:
        try:
            doc = json.loads(line)
        except ValueError as exc:
            raise ConfigurationError(
                f"{self.path} line {self.lines}: not JSON ({exc})"
            ) from None
        from repro.obs.fleet import FLEET_META_KIND

        self.aggregator.observe(doc)
        if doc.get("ev") == FLEET_META_KIND:
            return False
        self.events += 1
        return True


def monitor_follow(
    path: str,
    *,
    engine: AlertEngine,
    window_cycles: int = DEFAULT_WINDOW_CYCLES,
    refresh: float = 1.0,
    once: bool = False,
    stream: Optional[IO[str]] = None,
    max_idle_seconds: Optional[float] = None,
) -> Dict:
    """Tail a JSONL trace, folding it live; return the summary.

    With ``once`` the file is drained to its current end and finalized
    (remaining partial window folded, analyzer diagnoses forwarded to
    the alert engine).  Otherwise the tail keeps polling until
    interrupted or until no new bytes arrive for ``max_idle_seconds``.
    """
    stream = stream if stream is not None else sys.stderr
    board = _Dashboard(stream, refresh, live=not once)

    profile = StreamingProfile(window_cycles)
    profile.on_window = lambda snap: engine.observe_window(snap, source=path)
    tailer = TraceTailer(path, profile)

    def render(force: bool = False) -> None:
        fold = profile.fold
        lines = [
            f"repro live monitor — following {path} "
            f"(window {window_cycles} cycles)",
            f"events: {tailer.events}  windows closed: {profile.windows_closed}  "
            f"write-amp: {fold.prov.write_amplification:.3f}  "
            f"stall share: {fold.fase.stall_share:.3f}",
        ]
        lines.extend(_alert_lines(engine))
        snaps = list(profile.snapshots)[-DASHBOARD_ROWS:]
        if snaps:
            lines.append("")
            lines.append(
                f"{'window':>6} {'events':>8} {'evflush':>8} {'drains':>7} "
                f"{'stallcy':>9} {'sel':>4} {'wamp':>7} {'stall%':>7}"
            )
            for s in snaps:
                lines.append(
                    f"{s.index:>6} {s.events:>8} {s.evict_flushes:>8} "
                    f"{s.fase_drains:>7} {s.stall_cycles:>9} {s.selections:>4} "
                    f"{s.write_amplification:>7.3f} "
                    f"{100.0 * s.stall_share:>6.2f}%"
                )
        board.draw(lines, force=force)

    idle_since: Optional[float] = None
    try:
        while True:
            got = tailer.poll()
            if got:
                idle_since = None
                if not once:
                    render()
            elif once:
                break
            else:
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                elif (
                    max_idle_seconds is not None
                    and now - idle_since >= max_idle_seconds
                ):
                    break
                render()
                time.sleep(FOLLOW_POLL_SECONDS)
    except KeyboardInterrupt:
        pass
    finally:
        tailer.close()

    final = profile.finalize(schema=tailer.schema)
    engine.observe_diagnoses(final.diagnoses, source=path)
    if not once:
        render(force=True)
    return {
        "mode": "follow",
        "path": path,
        "events": tailer.events,
        "windows_closed": profile.windows_closed,
        "profile": final.to_dict(),
        "alerts": [a.to_dict() for a in engine.alerts],
        "max_severity": engine.max_severity(),
    }


# ---------------------------------------------------------------------------
# fleet mode
# ---------------------------------------------------------------------------


def _fleet_summary(mode: str, aggregator, engine: AlertEngine, **extra) -> Dict:
    summary = {
        "mode": mode,
        "fleet": aggregator.snapshot(),
        "workers": [
            aggregator.workers[i].to_dict() for i in sorted(aggregator.workers)
        ],
        "site_classes": {
            cls: dict(stats)
            for cls, stats in sorted(aggregator.site_classes.items())
        },
        "alerts": [a.to_dict() for a in engine.alerts],
        "max_severity": engine.max_severity(),
    }
    summary.update(extra)
    return summary


def _fleet_board(
    title: str,
    engine: AlertEngine,
    board: _Dashboard,
    once: bool,
    started: float,
):
    """A render closure over one fleet dashboard (shared by the modes)."""
    from repro.obs.report import render_fleet_lines

    def render(aggregator, force: bool = False) -> None:
        lines = [f"{title} ({time.monotonic() - started:.1f}s)"]
        lines.extend(_alert_lines(engine))
        lines.append("")
        lines.extend(render_fleet_lines(aggregator))
        board.draw(lines, force=force)

    def on_pump(aggregator) -> None:
        engine.observe_window(aggregator.snapshot(), source=title)
        if not once:
            render(aggregator)

    return render, on_pump


def monitor_fleet_grid(
    harness: object,
    artifact: str,
    *,
    jobs: int,
    engine: AlertEngine,
    refresh: float = 1.0,
    once: bool = False,
    stream: Optional[IO[str]] = None,
    span_path: Optional[str] = None,
    fleet_log: Optional[str] = None,
    sample_interval: Optional[float] = None,
) -> Dict:
    """Run one artifact's grid with the fleet bus attached; watch the pool.

    Unlike plain grid mode — which watches the *cells* — this watches
    the *workers*: the dashboard re-renders on every bus pump with one
    row per worker, and the alert engine sees fleet snapshots (dead
    workers, straggler ratio, RSS) instead of cell metrics.
    """
    from repro.experiments.parallel import grid_for
    from repro.obs.fleet import FleetTelemetry

    if jobs < 2:
        raise ConfigurationError(
            "fleet mode monitors a worker pool; use --jobs >= 2"
        )
    cells = grid_for(harness, artifact)
    if not cells:
        raise ConfigurationError(
            f"artifact {artifact!r} has no precomputable run grid to monitor"
        )
    stream = stream if stream is not None else sys.stderr
    board = _Dashboard(stream, refresh, live=not once)
    render, on_pump = _fleet_board(
        f"repro fleet monitor — grid {artifact}, jobs={jobs}",
        engine,
        board,
        once,
        time.monotonic(),
    )
    telemetry = FleetTelemetry(
        spill_path=fleet_log,
        sample_interval=sample_interval,
        span_path=span_path,
        on_pump=on_pump,
    )
    with telemetry:
        harness.run_grid(cells, jobs=jobs, telemetry=telemetry)
    aggregator = telemetry.aggregator
    engine.observe_window(aggregator.snapshot(), source=f"fleet:{artifact}")
    if not once:
        render(aggregator, force=True)
    return _fleet_summary(
        "fleet-grid",
        aggregator,
        engine,
        artifact=artifact,
        jobs=jobs,
        cells_total=len(cells),
        span_path=span_path,
        fleet_log=fleet_log,
    )


def monitor_fleet_campaign(
    workload: str,
    technique: str,
    *,
    jobs: int,
    engine: AlertEngine,
    threads: int = 1,
    scale: float = 1.0,
    seed: int = 0,
    fault_models=("clean",),
    max_sites: int = 256,
    sample_seed: int = 0,
    refresh: float = 1.0,
    once: bool = False,
    stream: Optional[IO[str]] = None,
    span_path: Optional[str] = None,
    fleet_log: Optional[str] = None,
    sample_interval: Optional[float] = None,
) -> Dict:
    """Run one crash campaign with the fleet bus attached; watch the pool.

    Per-crash ``task_progress`` events from the workers fold into the
    aggregator's per-site-class table and per-worker violation counts —
    visible live, not just in the final matrix.  The campaign always
    recomputes (no result cache): the point of this mode is watching
    the work happen.
    """
    from repro.faults.campaign import FaultCampaignSpec, run_campaign
    from repro.obs.fleet import FleetTelemetry

    if jobs < 2:
        raise ConfigurationError(
            "fleet mode monitors a worker pool; use --jobs >= 2"
        )
    stream = stream if stream is not None else sys.stderr
    board = _Dashboard(stream, refresh, live=not once)
    render, on_pump = _fleet_board(
        f"repro fleet monitor — campaign {workload}/{technique}, jobs={jobs}",
        engine,
        board,
        once,
        time.monotonic(),
    )
    telemetry = FleetTelemetry(
        spill_path=fleet_log,
        sample_interval=sample_interval,
        span_path=span_path,
        on_pump=on_pump,
    )
    spec = FaultCampaignSpec(
        fault_models=tuple(fault_models),
        max_sites=max_sites,
        sample_seed=sample_seed,
        jobs=jobs,
    )
    with telemetry:
        matrix = run_campaign(
            workload,
            technique=technique,
            threads=threads,
            seed=seed,
            scale=scale,
            spec=spec,
            telemetry=telemetry,
        )
    aggregator = telemetry.aggregator
    engine.observe_window(
        aggregator.snapshot(), source=f"fleet:{workload}/{technique}"
    )
    if not once:
        render(aggregator, force=True)
    return _fleet_summary(
        "fleet-campaign",
        aggregator,
        engine,
        workload=matrix.workload,
        technique=matrix.technique,
        jobs=jobs,
        injected=matrix.injected,
        matrix_ok=matrix.ok,
        span_path=span_path,
        fleet_log=fleet_log,
    )


def monitor_fleet_follow(
    path: str,
    *,
    engine: AlertEngine,
    refresh: float = 1.0,
    once: bool = False,
    stream: Optional[IO[str]] = None,
    max_idle_seconds: Optional[float] = None,
) -> Dict:
    """Tail a fleet JSONL spill from another process; same fold, no bus.

    The producing run passes ``--fleet-log PATH`` (or
    ``FleetTelemetry(spill_path=...)``); this side replays the spill
    through an identical :class:`~repro.obs.fleet.FleetAggregator`, so
    the remote dashboard matches the attached one event for event.
    """
    from repro.obs.fleet import FleetAggregator

    stream = stream if stream is not None else sys.stderr
    board = _Dashboard(stream, refresh, live=not once)
    aggregator = FleetAggregator()
    tailer = FleetTailer(path, aggregator)
    render, _on_pump = _fleet_board(
        f"repro fleet monitor — following {path}",
        engine,
        board,
        once,
        time.monotonic(),
    )

    idle_since: Optional[float] = None
    try:
        while True:
            got = tailer.poll()
            if got:
                idle_since = None
                engine.observe_window(aggregator.snapshot(), source=path)
                if not once:
                    render(aggregator)
            elif once:
                break
            else:
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                elif (
                    max_idle_seconds is not None
                    and now - idle_since >= max_idle_seconds
                ):
                    break
                render(aggregator)
                time.sleep(FOLLOW_POLL_SECONDS)
    except KeyboardInterrupt:
        pass
    finally:
        tailer.close()

    if not once:
        render(aggregator, force=True)
    return _fleet_summary(
        "fleet-follow",
        aggregator,
        engine,
        path=path,
        events=tailer.events,
    )


# ---------------------------------------------------------------------------
# CLI glue
# ---------------------------------------------------------------------------


def run_monitor(args, harness_factory) -> int:
    """Drive the ``monitor`` artifact from parsed CLI args.

    ``harness_factory`` defers harness construction to grid mode, so
    ``--follow`` never builds workloads it will not run.
    """
    fleet = bool(getattr(args, "fleet", False))
    try:
        if fleet:
            from repro.obs.fleet import fleet_rules

            rules = build_rules(args.rule, base=fleet_rules())
        else:
            rules = build_rules(args.rule)
    except ConfigurationError as exc:
        print(f"monitor: {exc}", file=sys.stderr)
        return 2
    sample_interval = getattr(args, "sample_interval", None) or None
    with AlertEngine(rules, log_path=args.alert_log) as engine:
        try:
            if fleet and args.follow:
                summary = monitor_fleet_follow(
                    args.follow,
                    engine=engine,
                    refresh=args.refresh,
                    once=args.once,
                    max_idle_seconds=args.max_idle,
                )
            elif fleet and getattr(args, "campaign", False):
                workloads = [w for w in args.workloads.split(",") if w]
                techniques = [t for t in args.techniques.split(",") if t]
                summary = monitor_fleet_campaign(
                    workloads[0],
                    techniques[0],
                    jobs=args.jobs,
                    engine=engine,
                    threads=args.threads,
                    scale=args.scale,
                    seed=args.seed,
                    fault_models=tuple(
                        m for m in args.fault_models.split(",") if m
                    ),
                    max_sites=args.max_sites,
                    sample_seed=args.sample_seed,
                    refresh=args.refresh,
                    once=args.once,
                    span_path=getattr(args, "span_export", None),
                    fleet_log=getattr(args, "fleet_log", None),
                    sample_interval=sample_interval,
                )
            elif fleet:
                summary = monitor_fleet_grid(
                    harness_factory(),
                    args.grid,
                    jobs=args.jobs,
                    engine=engine,
                    refresh=args.refresh,
                    once=args.once,
                    span_path=getattr(args, "span_export", None),
                    fleet_log=getattr(args, "fleet_log", None),
                    sample_interval=sample_interval,
                )
            elif args.follow:
                summary = monitor_follow(
                    args.follow,
                    engine=engine,
                    window_cycles=args.window,
                    refresh=args.refresh,
                    once=args.once,
                    max_idle_seconds=args.max_idle,
                )
            else:
                summary = monitor_grid(
                    harness_factory(),
                    args.grid,
                    jobs=args.jobs,
                    engine=engine,
                    refresh=args.refresh,
                    once=args.once,
                )
        except (ConfigurationError, OSError) as exc:
            print(f"monitor: {exc}", file=sys.stderr)
            return 2
        if args.json_out:
            payload = json.dumps(summary, sort_keys=True, indent=1) + "\n"
            if args.json_out == "-":
                sys.stdout.write(payload)
            else:
                with open(args.json_out, "w", encoding="utf-8") as fh:
                    fh.write(payload)
                print(f"wrote {args.json_out}", file=sys.stderr)
        elif args.once:
            for line in _alert_lines(engine):
                print(line)
            mode = summary["mode"]
            if mode == "grid":
                print(
                    f"monitored {summary['cells_done']}/"
                    f"{summary['cells_total']} cells of {summary['artifact']}"
                )
            elif mode == "follow":
                print(
                    f"followed {summary['path']}: {summary['events']} events, "
                    f"{summary['windows_closed']} windows"
                )
            else:
                snap = summary["fleet"]
                print(
                    f"fleet {mode}: {snap['tasks_done']} tasks over "
                    f"{snap['workers']} workers "
                    f"({snap['dead_workers']} dead, "
                    f"{snap['errors']} errors)"
                )
                for worker in summary["workers"]:
                    current = worker["current"]
                    label = current["label"] if current else "-"
                    print(
                        f"  w{worker['worker']} {worker['status']}: "
                        f"{worker['done']} tasks, "
                        f"{worker['busy_wall_s']:.2f}s busy, "
                        f"rss {worker['rss_peak_kb'] / 1024:.1f}MB peak, "
                        f"last task {label}"
                    )
        if args.alert_log:
            print(f"alert log: {args.alert_log}", file=sys.stderr)
        return _alert_gate(engine, args.fail_on)
