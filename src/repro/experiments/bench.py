"""The benchmark trajectory runner: a pinned perf suite over time.

Performance work needs a stable yardstick.  This module times a *pinned*
suite — fixed workloads, scales, seeds and techniques — and writes the
measurements to ``BENCH_<date>.json`` in the repo root, so the sequence
of committed files is a perf trajectory across PRs.  Three benches:

``simulator``
    Core-loop throughput: the same (workload, technique) run executed on
    the per-event path (``use_batches=False``) and on the batched fast
    path (prebuilt :class:`EventBatch` columns, the steady state the
    harness sees once ``BatchCachingWorkload`` has materialized a
    stream).  Reported as events/second, best of N repetitions.

``reuse_counts``
    Analysis-side throughput of the linear-time reuse accumulator
    (§III-B's all-window counting) on a synthetic interval set, in
    intervals/second.

``analyzer``
    Throughput of the offline trace analyzer
    (:func:`repro.obs.analyze.analyze`) on a deterministic synthetic
    trace mixing every event kind, in events/second.  Guards the
    one-pass fold: a per-event-object rewrite would show up here long
    before it hurts anyone profiling a real run.

``streaming_recorder``
    Recording-path overhead of the live telemetry layer on a pinned
    flush-heavy run: the same (workload, technique) case executed with
    the shared ``NULL_RECORDER``, with a buffering ``TraceRecorder``,
    and with a :class:`repro.obs.live.StreamingRecorder` spilling JSONL
    to disk — events/second each way, plus the overhead ratios vs the
    null path that the acceptance criteria pin.

``policy_zoo``
    Simulation cost of composed write-cache policy specs
    (:mod:`repro.cache.spec`) against bare SC on one pinned run — the
    per-store price of the ``StagedTechnique`` wrapper (admission
    filters, victim port, quantum cleaning), best of N repetitions in
    CPU time, with the per-stage flush counters alongside.

``harness``
    End-to-end wall clock of a Figure-4 subset grid three ways: a fresh
    sequential sweep, ``run_grid(..., jobs=N)`` on fresh harnesses, and
    a warm-disk-cache replay.  The ``jobs`` axis only helps with real
    cores — the document records ``cpus`` so a trajectory point from a
    single-CPU container (where 4 workers serialize and the measured
    "speedup" is pure overhead, < 1x) is not misread as a regression.

``fleet_overhead``
    Wall-clock price of the fleet telemetry bus
    (:mod:`repro.obs.fleet`): one pinned parallel grid run bare and run
    with events, resource sampling, JSONL spill and span export all
    attached — the ratio the <= 1.10x acceptance ceiling pins.

``ledger``
    Per-run price of the provenance ledger (:mod:`repro.obs.ledger`):
    one pinned ``api.run`` timed with recording off and on — the ratio
    the < 1.05x acceptance ceiling pins — plus raw append throughput.

Usage::

    PYTHONPATH=src python -m repro.experiments.bench            # full
    PYTHONPATH=src python -m repro.experiments.bench --quick    # CI smoke
    python tools/bench.py --out BENCH.json

Timing protocol: the single-process benches (``simulator``,
``reuse_counts``) are measured in *process CPU time*, best of ``--reps``
repetitions — on a shared single-CPU container, wall clock mostly
measures the neighbours, while CPU time is what the code costs; the
harness sweeps span multiple processes, so they are wall clock (once
each) and must be read against the recorded ``cpus``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.cache.spec import technique_factory
from repro.experiments.harness import Harness, HarnessConfig
from repro.locality.reuse import reuse_counts
from repro.nvram.machine import Machine
from repro.workloads.base import BatchCachingWorkload
from repro.workloads.registry import get_workload

#: Everything below is pinned: changing any value breaks comparability
#: across committed BENCH files, so bump ``SUITE_VERSION`` if you must.
SUITE_VERSION = 1
#: Shape of the payload ``tools/bench_compare.py`` consumes (simulator
#: row fields, metric names).  Documents written before the field
#: existed are schema 1; the comparator refuses cross-schema diffs.
BENCH_SCHEMA_VERSION = 1
BENCH_SEED = 7

#: Simulator bench: (workload, technique, factory kwargs).  BEST is the
#: bare core loop; SC-offline adds the software cache at a pinned size.
SIM_SCALE = 0.5
SIM_CASES = (
    # SC-offline sizes are the paper's §IV-G selections per program.
    ("barnes", "BEST", {}),
    ("barnes", "SC-offline", {"sc_fixed_size": 15}),
    ("water-spatial", "BEST", {}),
    ("water-spatial", "SC-offline", {"sc_fixed_size": 23}),
)

#: reuse_counts bench: synthetic reuse intervals over a pinned trace.
REUSE_N = 500_000
REUSE_INTERVALS = 250_000

#: analyzer bench: synthetic trace length (events).
ANALYZER_EVENTS = 100_000

#: Streaming-recorder bench: a flush/FASE-heavy pinned case (the same
#: shape ``benchmarks/test_obs_overhead.py`` bounds).
STREAM_SCALE = 0.2
STREAM_WORKLOAD = "queue"
STREAM_TECHNIQUE = "SC"
STREAM_THREADS = 2

#: Policy-zoo bench: composed policy stages on one pinned flush-heavy
#: case.  Prices the StagedTechnique wrapper (filters, victim port,
#: quantum cleaning) against bare SC on the same run.
POLICY_ZOO_SCALE = 0.3
POLICY_ZOO_WORKLOAD = "mdb"
POLICY_ZOO_BENCH_SPECS = (
    "SC",
    "SC+nhit:2",
    "SC+cutoff:8",
    "SC+clean:4",
    "SC+victim:16",
    "SC+nhit:2+clean:4+victim:16",
)

#: Harness bench: a Figure-4 subset (single-thread speedups over ER).
HARNESS_SCALE = 0.5
HARNESS_WORKLOADS = ("barnes", "volrend", "water-nsquared", "water-spatial")
HARNESS_TECHNIQUES = ("ER", "AT", "SC", "SC-offline", "BEST")


def cpus_available() -> int:
    """CPUs this process may actually run on (affinity-aware).

    ``os.cpu_count()`` reports the host's cores; containers and CI
    runners often pin the process to fewer.  Parallel speedups must be
    read against *this* number — the committed 0.9x harness point was
    measured with ``cpus: 1``, where four workers can only serialize.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _best_of(reps: int, fn: Callable[[], None]) -> float:
    """Minimum process-CPU-time over ``reps`` runs of ``fn``."""
    best = float("inf")
    for _ in range(reps):
        start = time.process_time()
        fn()
        best = min(best, time.process_time() - start)
    return best


# ---------------------------------------------------------------------------


def bench_simulator(scale: float, reps: int) -> List[Dict]:
    """Per-event vs batched events/second on the pinned cases."""
    rows = []
    for name, technique, kwargs in SIM_CASES:
        workload = BatchCachingWorkload(get_workload(name, scale=scale))
        config = HarnessConfig(scale=scale, seed=BENCH_SEED).machine_config()
        # Materialize the batch columns up front: the steady state under
        # BatchCachingWorkload, and what makes this a core-loop bench
        # rather than a generator bench.
        batches = workload.batch_streams(1, BENCH_SEED)
        events = sum(len(b) for b in list(batches[0]))

        def run(use_batches: bool) -> None:
            Machine(config).run(
                workload,
                technique_factory(technique, **kwargs),
                num_threads=1,
                seed=BENCH_SEED,
                use_batches=use_batches,
            )

        per_event_s = _best_of(reps, lambda: run(False))
        batched_s = _best_of(reps, lambda: run(True))
        rows.append(
            {
                "workload": name,
                "technique": technique,
                "events": events,
                "per_event_s": round(per_event_s, 4),
                "batched_s": round(batched_s, 4),
                "per_event_eps": round(events / per_event_s),
                "batched_eps": round(events / batched_s),
                "speedup": round(per_event_s / batched_s, 2),
            }
        )
    return rows


def bench_reuse_counts(n: int, intervals: int, reps: int) -> Dict:
    """Throughput of the linear-time all-window reuse accumulator."""
    rng = np.random.default_rng(BENCH_SEED)
    starts = rng.integers(1, n, size=intervals, dtype=np.int64)
    ends = starts + rng.integers(1, 1000, size=intervals, dtype=np.int64)
    np.minimum(ends, n, out=ends)
    keep = ends > starts
    starts, ends = starts[keep], ends[keep]
    best = _best_of(reps, lambda: reuse_counts(starts, ends, n))
    return {
        "n": n,
        "intervals": int(len(starts)),
        "best_s": round(best, 4),
        "intervals_per_sec": round(len(starts) / best),
    }


def _synthetic_trace(n: int):
    """A deterministic ``n``-event trace exercising every analyzer path.

    An LCG stands in for randomness (the shape must be pinned, not
    sampled): interleaved FASE spans on four threads, evict flushes over
    a skewed line set, stalls, attributed drains, and a controller
    narrative long enough to trip the oscillation detector — the
    worst-case (every-branch) profile for the one-pass fold.
    """
    from repro.obs.trace import (
        EV_DRAIN,
        EV_EVICT_FLUSH,
        EV_FASE_BEGIN,
        EV_FASE_END,
        EV_KNEE_CANDIDATE,
        EV_MRC_COMPUTED,
        EV_SIZE_SELECTED,
        EV_STALL,
        TraceRecorder,
    )

    rec = TraceRecorder()
    state = BENCH_SEED
    uid = 0
    open_uid = [-1, -1, -1, -1]
    while len(rec) < n:
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        pick = (state >> 32) % 100
        tid = (state >> 16) % 4
        t = len(rec) * 7
        if pick < 55:
            rec.record(EV_EVICT_FLUSH, tid, t, (state >> 8) % 997, 1, int(pick < 5))
        elif pick < 70:
            if open_uid[tid] < 0:
                open_uid[tid] = uid = uid + 1
                rec.record(EV_FASE_BEGIN, tid, t, uid)
            else:
                rec.record(EV_FASE_END, tid, t, open_uid[tid])
                rec.record(EV_DRAIN, tid, t, pick, 2, open_uid[tid])
                open_uid[tid] = -1
        elif pick < 85:
            rec.record(EV_STALL, tid, t, pick, pick % 2)
        else:
            size = 4 if (state >> 40) % 2 else 8
            rec.record(EV_MRC_COMPUTED, tid, t, 1000, 1)
            rec.record(EV_KNEE_CANDIDATE, tid, t, size, 0)
            rec.record(EV_SIZE_SELECTED, tid, t, size)
    return rec


def bench_analyzer(events: int, reps: int) -> Dict:
    """Events/second of the offline analyzer's one-pass fold."""
    from repro.obs.analyze import analyze

    rec = _synthetic_trace(events)
    n = len(rec)
    best = _best_of(reps, lambda: analyze(rec))
    return {
        "events": n,
        "best_s": round(best, 4),
        "events_per_sec": round(n / best),
    }


def bench_streaming_recorder(scale: float, reps: int) -> Dict:
    """Recording overhead: null vs buffering vs streaming-with-spill.

    One pinned flush/FASE-heavy run (``queue`` under SC, two threads —
    the shape ``benchmarks/test_obs_overhead.py`` bounds) executed three
    ways.  A fresh recorder per rep keeps the ring/buffer cold, and the
    streaming spill goes to a real temporary file so the row prices the
    whole live pipeline, I/O included.
    """
    import tempfile

    from repro.obs.live import StreamingRecorder
    from repro.obs.trace import NULL_RECORDER, TraceRecorder

    workload = get_workload(STREAM_WORKLOAD, scale=scale)
    config = HarnessConfig(scale=scale, seed=BENCH_SEED).machine_config()
    seen = {"machine_events": 0, "trace_events": 0}

    def run(recorder) -> None:
        result = Machine(config, recorder=recorder).run(
            workload,
            technique_factory(STREAM_TECHNIQUE),
            num_threads=STREAM_THREADS,
            seed=BENCH_SEED,
        )
        seen["machine_events"] = result.instructions + result.persistent_stores
        if recorder is not NULL_RECORDER:
            seen["trace_events"] = len(recorder)

    def run_streaming(spill: str) -> None:
        with StreamingRecorder(spill) as rec:
            run(rec)

    null_s = _best_of(reps, lambda: run(NULL_RECORDER))
    traced_s = _best_of(reps, lambda: run(TraceRecorder()))
    with tempfile.TemporaryDirectory(prefix="bench-stream-") as tmp:
        spill = os.path.join(tmp, "spill.jsonl")
        streaming_s = _best_of(reps, lambda: run_streaming(spill))
    return {
        "workload": STREAM_WORKLOAD,
        "technique": STREAM_TECHNIQUE,
        "threads": STREAM_THREADS,
        "machine_events": seen["machine_events"],
        "trace_events": seen["trace_events"],
        "null_s": round(null_s, 4),
        "traced_s": round(traced_s, 4),
        "streaming_s": round(streaming_s, 4),
        "null_eps": round(seen["machine_events"] / null_s),
        "traced_eps": round(seen["machine_events"] / traced_s),
        "streaming_eps": round(seen["machine_events"] / streaming_s),
        "traced_overhead": round(traced_s / null_s, 3),
        "streaming_overhead": round(streaming_s / null_s, 3),
    }


def bench_policy_zoo(scale: float, reps: int) -> List[Dict]:
    """Simulation cost of each composed policy spec vs bare SC.

    Same pinned workload/seed for every row; ``overhead_vs_sc`` is this
    spec's best CPU time over plain SC's, so the wrapper's per-store
    price (and any flush-traffic change it induces) is one committed
    number per stage.  The stage flush counters ride along so a
    trajectory point also shows *why* a row moved.
    """
    workload = BatchCachingWorkload(get_workload(POLICY_ZOO_WORKLOAD, scale=scale))
    config = HarnessConfig(scale=scale, seed=BENCH_SEED).machine_config()
    workload.batch_streams(1, BENCH_SEED)

    rows = []
    sc_s = None
    for spec in POLICY_ZOO_BENCH_SPECS:
        seen = {}

        def run() -> None:
            seen["result"] = Machine(config).run(
                workload,
                technique_factory(spec),
                num_threads=1,
                seed=BENCH_SEED,
            )

        best = _best_of(reps, run)
        if sc_s is None:
            sc_s = best
        result = seen["result"]
        events = result.instructions + result.persistent_stores
        rows.append(
            {
                "spec": spec,
                "events": events,
                "best_s": round(best, 4),
                "eps": round(events / best),
                "overhead_vs_sc": round(best / sc_s, 3),
                "flush_ratio": round(result.flush_ratio, 5),
                "clean_flushes": sum(t.clean_flushes for t in result.threads),
                "bypass_flushes": sum(t.bypass_flushes for t in result.threads),
                "victim_flushes": sum(t.victim_flushes for t in result.threads),
            }
        )
    return rows


def bench_harness(scale: float, jobs: int) -> Dict:
    """Figure-4-subset wall clock: sequential, ``jobs=N``, warm cache.

    The sequential and parallel sweeps use fresh harnesses with no disk
    cache, so they measure simulation fan-out (which needs real cores to
    win); the cached replay measures what a repeat invocation pays once
    the on-disk result cache is warm.
    """
    import shutil
    import tempfile

    cells = [
        (name, technique, 1)
        for name in HARNESS_WORKLOADS
        for technique in HARNESS_TECHNIQUES
    ]
    config = HarnessConfig(scale=scale, seed=BENCH_SEED)

    start = time.perf_counter()
    sequential = Harness(config).run_grid(cells, jobs=1)
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = Harness(config).run_grid(cells, jobs=jobs)
    parallel_s = time.perf_counter() - start

    cache_dir = tempfile.mkdtemp(prefix="bench-cache-")
    try:
        Harness(config, cache_dir=cache_dir).run_grid(cells, jobs=1)
        start = time.perf_counter()
        cached = Harness(config, cache_dir=cache_dir).run_grid(cells, jobs=1)
        cached_s = time.perf_counter() - start
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    mismatched = [
        cell for cell in cells
        if not (
            sequential[cell].to_dict()
            == parallel[cell].to_dict()
            == cached[cell].to_dict()
        )
    ]
    available = cpus_available()
    return {
        "cells": len(cells),
        "jobs": jobs,
        "cpus": os.cpu_count(),
        "cpus_available": available,
        # Fewer schedulable cores than workers: the speedup number is a
        # host artifact, not a code property — comparators must note it,
        # not gate on it.
        "advisory": available < jobs,
        "sequential_s": round(sequential_s, 2),
        "parallel_s": round(parallel_s, 2),
        "parallel_speedup": round(sequential_s / parallel_s, 2),
        "cached_s": round(cached_s, 4),
        "cached_speedup": round(sequential_s / cached_s, 1),
        "results_identical": not mismatched,
    }


#: Fleet-telemetry bench: the same parallel grid with and without the
#: bus attached.  SC rows pull profiling summaries, so the telemetry run
#: also prices claim labels, release tracking and the span export.
FLEET_SCALE = 0.3
FLEET_WORKLOADS = ("barnes", "water-spatial")
FLEET_TECHNIQUES = ("ER", "SC")


def bench_fleet_overhead(scale: float, jobs: int, reps: int) -> Dict:
    """Wall-clock price of the fleet telemetry bus on a parallel grid.

    One pinned grid executed ``reps`` times bare and ``reps`` times with
    the full telemetry pipeline attached — bus events, the per-worker
    resource sampler, the JSONL spill and the span export — best wall
    clock each way.  ``fleet_overhead`` is the ratio the acceptance
    criteria pin (<= 1.10x); like the harness speedup it is ``advisory``
    when the host cannot actually run the workers, since ``jobs`` pools
    squeezed onto fewer cores contend on the one CPU the parent needs
    for pumping.
    """
    import tempfile

    from repro.obs.fleet import DEFAULT_SAMPLE_INTERVAL, FleetTelemetry

    cells = [
        (name, technique, 1)
        for name in FLEET_WORKLOADS
        for technique in FLEET_TECHNIQUES
    ]
    config = HarnessConfig(scale=scale, seed=BENCH_SEED)

    plain_s = float("inf")
    plain_results = None
    for _ in range(reps):
        start = time.perf_counter()
        plain_results = Harness(config).run_grid(cells, jobs=jobs)
        plain_s = min(plain_s, time.perf_counter() - start)

    fleet_s = float("inf")
    fleet_results = None
    fleet_events = 0
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
        for rep in range(reps):
            telemetry = FleetTelemetry(
                spill_path=os.path.join(tmp, f"fleet-{rep}.jsonl"),
                sample_interval=DEFAULT_SAMPLE_INTERVAL,
                span_path=os.path.join(tmp, f"spans-{rep}.json"),
            )
            start = time.perf_counter()
            with telemetry:
                fleet_results = Harness(config).run_grid(
                    cells, jobs=jobs, telemetry=telemetry
                )
            fleet_s = min(fleet_s, time.perf_counter() - start)
            fleet_events = telemetry.aggregator.events

    available = cpus_available()
    return {
        "cells": len(cells),
        "jobs": jobs,
        "cpus_available": available,
        "advisory": available < jobs,
        "fleet_events": fleet_events,
        "plain_s": round(plain_s, 2),
        "fleet_s": round(fleet_s, 2),
        "fleet_overhead": round(fleet_s / plain_s, 3),
        "results_identical": all(
            plain_results[cell].to_dict() == fleet_results[cell].to_dict()
            for cell in cells
        ),
    }


#: Sharded bench: one large single run split across workers.
SHARDED_SCALE = 1.0
SHARDED_WORKLOAD = "water-spatial"
SHARDED_TECHNIQUE = "ER"
SHARDED_THREADS = 2


def bench_sharded(scale: float, jobs: int) -> Dict:
    """Within-run scaling: one simulation sharded across workers.

    Wall clock of one large run executed unsharded on one core vs split
    into ``jobs`` spatial-hash shards simulated concurrently
    (:func:`repro.experiments.parallel.run_sharded_parallel`), plus the
    exactness check — ER's merged counters must equal the unsharded
    machine's bit for bit.  Informational (never gated): like the
    harness fan-out, the speedup needs real cores.
    """
    from repro.experiments.parallel import run_sharded_parallel

    workload = BatchCachingWorkload(get_workload(SHARDED_WORKLOAD, scale=scale))
    config = HarnessConfig(scale=scale, seed=BENCH_SEED).machine_config()
    # Materialize batch columns first so both timings are core-loop time.
    workload.batch_streams(SHARDED_THREADS, BENCH_SEED)

    start = time.perf_counter()
    unsharded = Machine(config).run(
        workload,
        technique_factory(SHARDED_TECHNIQUE),
        num_threads=SHARDED_THREADS,
        seed=BENCH_SEED,
    )
    unsharded_s = time.perf_counter() - start

    start = time.perf_counter()
    sharded = run_sharded_parallel(
        config,
        workload,
        SHARDED_TECHNIQUE,
        jobs,
        num_threads=SHARDED_THREADS,
        seed=BENCH_SEED,
        num_shards=jobs,
    )
    sharded_s = time.perf_counter() - start

    merged = sharded.merged
    counters_identical = (
        merged.persistent_stores == unsharded.persistent_stores
        and merged.instructions == unsharded.instructions
        and merged.flushes == unsharded.flushes
        and merged.fase_count == unsharded.fase_count
    )
    available = cpus_available()
    return {
        "workload": SHARDED_WORKLOAD,
        "technique": SHARDED_TECHNIQUE,
        "threads": SHARDED_THREADS,
        "shards": jobs,
        "jobs": jobs,
        "cpus_available": available,
        "advisory": available < jobs,
        "events": unsharded.instructions + unsharded.persistent_stores,
        "cross_shard_spans": sharded.split_stats["cross_shard_spans"],
        "unsharded_s": round(unsharded_s, 2),
        "sharded_s": round(sharded_s, 2),
        "sharded_speedup": round(unsharded_s / sharded_s, 2),
        "counters_identical": counters_identical,
    }


#: Ledger bench: one pinned run timed with provenance recording off and
#: on.  ER on ``queue`` — cheap enough that the fixed per-run append
#: cost would show if it ever grew, which is the point.
LEDGER_SCALE = 0.1
LEDGER_WORKLOAD = "queue"
LEDGER_TECHNIQUE = "ER"
LEDGER_APPENDS = 200


def bench_ledger(scale: float, reps: int) -> Dict:
    """Per-run price of the provenance ledger, plus raw append throughput.

    The same pinned ``api.run`` is timed with ``REPRO_LEDGER=off`` and
    with recording into a throwaway ledger; ``ledger_overhead`` is the
    ratio ``bench_compare`` gates (< 1.05x — provenance must stay in the
    noise).  ``appends_per_sec`` prices the append path alone
    (record build + O_APPEND write + index rewrite), informational.
    """
    import tempfile

    from repro import api
    from repro.obs.ledger import LEDGER_ENV, RunLedger, RunRecord

    spec = api.RunSpec(
        workload=LEDGER_WORKLOAD,
        technique=LEDGER_TECHNIQUE,
        scale=scale,
        seed=BENCH_SEED,
    )
    saved = os.environ.get(LEDGER_ENV)
    with tempfile.TemporaryDirectory(prefix="bench-ledger-") as tmp:
        try:
            os.environ[LEDGER_ENV] = "off"
            off_s = _best_of(reps, lambda: api.run(spec))
            os.environ[LEDGER_ENV] = os.path.join(tmp, "runs")
            on_s = _best_of(reps, lambda: api.run(spec))
        finally:
            if saved is None:
                os.environ.pop(LEDGER_ENV, None)
            else:
                os.environ[LEDGER_ENV] = saved
        ledger = RunLedger(os.path.join(tmp, "appends"))
        start = time.process_time()
        for i in range(LEDGER_APPENDS):
            ledger.append(
                RunRecord(kind="bench-append", spec={"i": i}, counters={})
            )
        append_s = time.process_time() - start
    return {
        "workload": LEDGER_WORKLOAD,
        "technique": LEDGER_TECHNIQUE,
        "off_s": round(off_s, 4),
        "on_s": round(on_s, 4),
        "ledger_overhead": round(on_s / off_s, 3),
        "appends": LEDGER_APPENDS,
        "append_s": round(append_s, 4),
        "appends_per_sec": round(LEDGER_APPENDS / append_s),
    }


# ---------------------------------------------------------------------------


def run_suite(
    quick: bool = False, reps: Optional[int] = None, jobs: int = 4
) -> Dict:
    """Run every bench; return the BENCH document."""
    reps = reps or (2 if quick else 5)
    sim_scale = 0.08 if quick else SIM_SCALE
    harness_scale = 0.05 if quick else HARNESS_SCALE
    reuse_n = 100_000 if quick else REUSE_N
    reuse_intervals = 50_000 if quick else REUSE_INTERVALS
    analyzer_events = 20_000 if quick else ANALYZER_EVENTS
    stream_scale = 0.05 if quick else STREAM_SCALE
    zoo_scale = 0.05 if quick else POLICY_ZOO_SCALE
    sharded_scale = 0.1 if quick else SHARDED_SCALE
    fleet_scale = 0.05 if quick else FLEET_SCALE
    ledger_scale = 0.05 if quick else LEDGER_SCALE
    return {
        "suite_version": SUITE_VERSION,
        "schema_version": BENCH_SCHEMA_VERSION,
        "date": time.strftime("%Y-%m-%d"),
        "quick": quick,
        "reps": reps,
        # Host metadata: a trajectory point is only comparable against
        # another from a similar host, so record what the host was.
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "cpus_available": cpus_available(),
        "simulator": (sim := bench_simulator(sim_scale, reps)),
        "simulator_speedup_geomean": round(
            float(np.exp(np.mean([np.log(r["speedup"]) for r in sim]))), 2
        ),
        "reuse_counts": bench_reuse_counts(reuse_n, reuse_intervals, reps),
        "analyzer": bench_analyzer(analyzer_events, reps),
        "streaming_recorder": bench_streaming_recorder(stream_scale, reps),
        "policy_zoo": bench_policy_zoo(zoo_scale, reps),
        "harness": bench_harness(harness_scale, jobs),
        "sharded": bench_sharded(sharded_scale, jobs),
        "fleet_overhead": bench_fleet_overhead(fleet_scale, jobs, reps),
        "ledger": bench_ledger(ledger_scale, reps),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Time the pinned perf suite and write BENCH_<date>.json.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scales, 2 reps: a CI smoke run, not a trajectory point",
    )
    parser.add_argument(
        "--reps", type=int, default=None, help="repetitions per measurement"
    )
    parser.add_argument(
        "--jobs", type=int, default=4, help="workers for the harness bench"
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output path (default BENCH_<date>.json; '-' for stdout only)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing --out file instead of refusing",
    )
    args = parser.parse_args(argv)

    doc = run_suite(quick=args.quick, reps=args.reps, jobs=args.jobs)
    body = json.dumps(doc, indent=2, sort_keys=True)
    print(body)
    out = args.out
    if out != "-":
        if out is None:
            # Committed baselines are a trajectory — never silently
            # clobber a same-day point (it has happened): suffix -2, -3…
            out = f"BENCH_{doc['date']}.json"
            serial = 1
            while os.path.exists(out):
                serial += 1
                out = f"BENCH_{doc['date']}-{serial}.json"
            if serial > 1:
                print(
                    f"note: BENCH_{doc['date']}.json exists; "
                    f"writing {out} instead",
                    file=sys.stderr,
                )
        elif os.path.exists(out) and not args.force:
            print(
                f"error: {out} exists; pass --force to overwrite "
                f"an existing baseline",
                file=sys.stderr,
            )
            return 2
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(body + "\n")
        print(f"wrote {out}", file=sys.stderr)

    # The suite is a run like any other: one ledger record per
    # invocation, carrying the whole document, so `history` can fit
    # trends over bench sections and `bench_compare --ledger` can gate
    # against them.
    from repro.obs.history import bench_counters, bench_spec
    from repro.obs.ledger import record_run

    record_run(
        "bench",
        bench_spec(doc),
        bench_counters(doc),
        extra={"bench": doc},
        artifacts={"bench": out} if out != "-" else None,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
