"""Process-parallel execution of experiment grids and sharded runs.

The harness's unit of work — one ``(workload, technique, threads)`` cell
under a frozen :class:`HarnessConfig` — is a pure, deterministic
function (``execute_cell``), so cells can run in any order in any
process and produce bit-identical results.  Earlier versions fanned a
grid over ``ProcessPoolExecutor`` with one future per group and a hard
barrier between the profiling and cell phases; this module replaces that
with fork-once workers over a shared work queue
(:class:`~repro.experiments.transport.WorkerPool`):

- **Fork once, reuse everywhere.**  ``jobs`` workers spawn once per
  sweep with the frozen config preloaded; each builds its ``Harness``
  a single time and keeps it across tasks, so a workload's materialized
  batch columns amortize over *every* group that worker pulls, not just
  one.
- **Work stealing, no phase barrier.**  ``(workload, threads)`` groups
  sit in one shared queue — whichever worker drains first pulls the next
  group, so imbalanced groups level out by construction.  Summary
  (profiling) tasks are enqueued first and *only the groups that need
  them* wait; everything else starts immediately, and a group blocked on
  a summary is released the moment that summary lands.
- **Shared-memory transport.**  Small control tuples cross the queues;
  bulk event data (recorded profile traces, shard batch columns) crosses
  as ``multiprocessing.shared_memory`` manifests
  (:mod:`repro.experiments.transport`) — no pickling of event data.
  Profile traces shipped back this way let the parent adopt the worker's
  profiling run, making trace-consuming artifacts (figure2/figure7) free
  after an ``--artifact all`` sweep.

The same pool executes **sharded single runs**: one large simulation is
split across workers by spatially hashing its line space
(:mod:`repro.nvram.sharded`), each worker simulating one shard machine
and the parent merging per-shard results at the final drain barrier.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import (
    Cell,
    Harness,
    HarnessConfig,
    ProfileSummary,
    record_grid,
)
from repro.experiments.transport import (
    WorkerPool,
    attach_batches,
    attach_traces,
    share_batches,
    share_traces,
    unlink_segment,
)
from repro.nvram.stats import RunResult

#: Base techniques whose cells require a profiling pass first.
_NEEDS_SUMMARY = ("SC", "SC-offline")


def _needs_summary(technique: str) -> bool:
    """Whether a technique spec's *base* needs a profiling pass."""
    from repro.cache.spec import TechniqueSpec

    return TechniqueSpec.parse(technique).base in _NEEDS_SUMMARY


# ---------------------------------------------------------------------------
# Worker-side task handlers
# ---------------------------------------------------------------------------


def describe_task(kind: str, payload) -> str:
    """A short human label for one pool task (fleet-bus event text)."""
    try:
        if kind == "summary":
            return f"summary:{payload[0]}"
        if kind == "cells":
            cells = payload[1]
            name, _technique, threads = cells[0]
            return f"{name}/t{threads}×{len(cells)}"
        if kind == "shard":
            return f"shard:{payload[0]}"
        if kind == "crash":
            workload, chunk = payload[1], payload[3]
            return f"crash:{getattr(workload, 'name', '?')}×{len(chunk)}"
    except (IndexError, TypeError):
        pass
    return kind


def make_task_handlers(
    config: Optional[HarnessConfig],
    cache_dir: Optional[str],
    emitter=None,
) -> Dict[str, object]:
    """Build one worker's task handlers around its once-built state.

    Called exactly once per worker process by the pool's worker loop.
    The harness is created lazily on the first harness-needing task (a
    pool running only ``"shard"`` tasks never builds one) and then kept
    for the worker's lifetime — the fork-once discipline that lets batch
    materializations amortize across every task the worker pulls.

    ``emitter`` is the worker's :class:`repro.obs.fleet.FleetEmitter`
    when the pool carries telemetry; handlers with sub-task progress
    (crash chunks) stream it through ``emitter.task_progress``.
    """
    state: Dict[str, object] = {}

    def get_harness() -> Harness:
        harness = state.get("harness")
        if harness is None:
            harness = Harness(config, cache_dir=cache_dir)
            state["harness"] = harness
        return harness

    def handle_summary(payload) -> Tuple:
        """(name, want_trace) -> (name, summary, profile_doc, trace_manifest).

        ``profile_doc``/``trace_manifest`` ship the profiling run's
        counters and recorded traces (via shared memory) when the
        summary was computed here rather than loaded from disk; the
        parent adopts them so later trace requests cost nothing.
        """
        name, want_trace = payload
        harness = get_harness()
        summary = harness.profile_summary(name)
        profile_doc = None
        trace_manifest = None
        if want_trace:
            profile = harness._profiles.get((name, 1))
            if profile is not None and profile.traces:
                profile_doc = profile.to_dict()
                trace_manifest = share_traces(profile.traces)
        return (name, summary, profile_doc, trace_manifest)

    def handle_cells(payload) -> List[Tuple[Cell, Dict]]:
        """(summaries, cells) -> [(cell, result_doc), ...].

        A group shares one ``(workload, threads)`` pair, so the worker's
        harness materializes the batch columns once and replays them for
        every technique — and, because the harness persists across
        tasks, for every *later* group of the same workload too.
        """
        summaries, cells = payload
        harness = get_harness()
        harness.preload_summaries(summaries)
        return [(cell, harness.run(*cell).to_dict()) for cell in cells]

    def handle_shard(payload) -> Dict:
        """One shard of a sharded run; batches arrive via shared memory."""
        from repro.cache.spec import technique_factory
        from repro.nvram.sharded import run_one_shard

        name, technique, factory_kwargs, manifest, shard_config, seed = payload
        batches = attach_batches(manifest)
        factory = technique_factory(technique, **factory_kwargs)
        return run_one_shard(shard_config, name, factory, batches, seed).to_dict()

    def handle_crash(payload) -> List[Tuple]:
        """One crash-campaign chunk; the driver caches in worker state."""
        from repro.faults.campaign import execute_crash_chunk

        return execute_crash_chunk(state, payload, emitter=emitter)

    return {
        "summary": handle_summary,
        "cells": handle_cells,
        "shard": handle_shard,
        "crash": handle_crash,
    }


# ---------------------------------------------------------------------------
# Grid execution
# ---------------------------------------------------------------------------


def run_grid_parallel(
    harness: Harness,
    cells: Sequence[Cell],
    jobs: int,
    progress=None,
    telemetry=None,
):
    """Fan ``cells`` over ``jobs`` fork-once worker processes.

    Cells already in the harness's memory cache are served from it;
    everything computed by workers is folded back in, so the calling
    harness ends up in the same state as after a sequential sweep —
    including profiling runs: summaries *and* their recorded traces are
    adopted from workers.

    ``progress``, if given, is called as ``progress(done, total, cell)``
    after every completed cell — the per-cell heartbeat long parallel
    sweeps print so a stalled worker is visible before the pool joins.
    A four-parameter callback additionally receives the cell's metric
    snapshot (:func:`repro.obs.live.snapshot_from_result`), computed
    parent-side from the worker's shipped result — no extra IPC.

    ``telemetry`` (:class:`repro.obs.fleet.FleetTelemetry`) attaches the
    fleet bus to the pool and, if a span path is configured, exports the
    deterministic scheduler timeline afterwards: every summary task and
    cell group is registered in a :class:`repro.obs.spans.SchedulePlan`
    up front in deterministic submission order, blocked groups carrying
    their summary's release edge, and costs are filled in from the
    (deterministic) results — persistent stores for summaries, modeled
    cycles for cell groups.
    """
    from repro.obs.live import resolve_grid_progress

    notify = resolve_grid_progress(progress)
    started = time.monotonic()
    cells = list(dict.fromkeys(cells))
    results: Dict[Cell, RunResult] = {}
    pending: List[Cell] = []
    for cell in cells:
        cached = harness._runs.get(cell)
        if cached is not None:
            results[cell] = cached
            if notify is not None:
                notify(len(results), len(cells), cell, cached)
        else:
            pending.append(cell)
    if not pending:
        record_grid(
            harness, results, jobs=jobs, wall_s=time.monotonic() - started
        )
        return results

    # Group cells sharing a (workload, threads) pair: the worker that
    # pulls a group materializes that stream's batch columns once for
    # all of the group's techniques.
    groups: Dict[Tuple[str, int], List[Cell]] = {}
    for cell in pending:
        name, _technique, threads = cell
        groups.setdefault((name, threads), []).append(cell)

    need_summary = {
        name
        for (name, technique, _threads) in pending
        if _needs_summary(technique) and name not in harness._summaries
    }

    def group_summaries(key: Tuple[str, int]) -> Dict[str, ProfileSummary]:
        name = key[0]
        if any(_needs_summary(t) for (_n, t, _th) in groups[key]):
            return {name: harness._summaries[name]}
        return {}

    def group_blocked(key: Tuple[str, int]) -> bool:
        return key[0] in need_summary and any(
            _needs_summary(t) for (_n, t, _th) in groups[key]
        )

    # Largest groups first, so stragglers start early and small groups
    # backfill — the usual longest-processing-time heuristic.
    by_size = sorted(
        groups, key=lambda key: (-len(groups[key]) * key[1], key)
    )
    plan = None
    if telemetry is not None:
        from repro.obs.spans import SchedulePlan

        # Register the whole plan up front, in deterministic submission
        # order — blocked groups at the position the scheduler considered
        # them, with a release edge, not at the racy moment the release
        # landed.  That keeps the span export a pure function of the grid.
        plan = SchedulePlan()
        for name in sorted(need_summary):
            plan.add(f"summary:{name}", "summary", f"summary:{name}")
        for key in by_size:
            plan.add(
                f"cells:{key[0]}:t{key[1]}",
                "cells",
                f"{key[0]}/t{key[1]}×{len(groups[key])}",
                release_after=f"summary:{key[0]}" if group_blocked(key) else None,
            )
        if telemetry.aggregator.tasks_total is None:
            telemetry.aggregator.tasks_total = len(need_summary) + len(by_size)
    blocked: Dict[str, List[Tuple[str, int]]] = {}
    with WorkerPool(
        jobs, (harness.config, harness.cache_dir), telemetry=telemetry
    ) as pool:
        task_kind: Dict[int, str] = {}
        for name in sorted(need_summary):
            task_kind[pool.submit("summary", (name, True))] = "summary"
        for key in by_size:
            if group_blocked(key):
                blocked.setdefault(key[0], []).append(key)
            else:
                task_id = pool.submit("cells", (group_summaries(key), groups[key]))
                task_kind[task_id] = "cells"
        while pool.outstanding:
            task_id, payload = pool.next_result()
            if task_kind.pop(task_id) == "summary":
                name, summary, profile_doc, trace_manifest = payload
                harness._summaries[name] = summary
                if trace_manifest is not None:
                    try:
                        profile = RunResult.from_dict(profile_doc)
                        profile.traces = attach_traces(trace_manifest)
                    finally:
                        unlink_segment(trace_manifest)
                    harness._profiles.setdefault((name, 1), profile)
                for key in blocked.pop(name, ()):
                    task_id = pool.submit(
                        "cells", (group_summaries(key), groups[key])
                    )
                    task_kind[task_id] = "cells"
            else:
                for cell, doc in payload:
                    result = RunResult.from_dict(doc)
                    harness._runs[cell] = result
                    results[cell] = result
                    if notify is not None:
                        notify(len(results), len(cells), cell, result)
    if plan is not None:
        # Deterministic costs, now that every result is in hand: a
        # summary "runs" for its workload's persistent stores, a cell
        # group for the sum of its cells' modeled cycles.
        for name in need_summary:
            plan.set_cost(
                f"summary:{name}", harness._summaries[name].persistent_stores
            )
        for key in by_size:
            plan.set_cost(
                f"cells:{key[0]}:t{key[1]}",
                sum(
                    max((t.cycles for t in results[cell].threads), default=1)
                    for cell in groups[key]
                ),
            )
        telemetry.export_spans(plan, jobs)
    record_grid(harness, results, jobs=jobs, wall_s=time.monotonic() - started)
    return results


# ---------------------------------------------------------------------------
# Sharded single-run execution
# ---------------------------------------------------------------------------


def run_sharded_parallel(
    config,
    workload,
    technique: str,
    jobs: int,
    *,
    num_threads: int = 1,
    seed: int = 0,
    num_shards: Optional[int] = None,
    barrier_every: Optional[int] = None,
    factory_kwargs: Optional[Dict] = None,
):
    """Scale *within* one run: shards of one simulation across workers.

    Splits ``workload``'s line space into ``num_shards`` (default
    ``jobs``) substreams with the SHARDS spatial hash, ships each
    shard's batch columns to a worker through shared memory, simulates
    the shard machines concurrently and merges their results at the
    final drain barrier (:func:`repro.nvram.sharded.merge_shard_results`).
    Returns the same :class:`~repro.nvram.sharded.ShardedRun` the
    sequential reference (:func:`repro.nvram.sharded.run_sharded`)
    returns, bit-identically — shard execution is deterministic and
    merge order is shard order regardless of completion order.

    ``technique`` is a technique spec string (see
    ``repro.cache.spec.TechniqueSpec``); ``factory_kwargs`` the base
    technique's keyword context (e.g. ``sc_fixed_size``).
    """
    from repro.nvram.sharded import (
        DEFAULT_BARRIER_EVERY,
        ShardedRun,
        merge_shard_results,
        shard_machine_config,
        split_workload,
    )

    if num_shards is None:
        num_shards = max(1, jobs)
    if barrier_every is None:
        barrier_every = DEFAULT_BARRIER_EVERY
    per_shard, stats = split_workload(
        workload, num_threads, seed, num_shards, barrier_every
    )
    shard_config = shard_machine_config(config, num_shards)
    name = getattr(workload, "name", "sharded")
    kwargs = dict(factory_kwargs or {})
    manifests = [share_batches(per_shard[s]) for s in range(num_shards)]
    docs: List[Optional[Dict]] = [None] * num_shards
    try:
        with WorkerPool(min(jobs, num_shards), (None, None)) as pool:
            shard_of_task = {
                pool.submit(
                    "shard",
                    (name, technique, kwargs, manifests[s], shard_config, seed),
                ): s
                for s in range(num_shards)
            }
            while pool.outstanding:
                task_id, doc = pool.next_result()
                docs[shard_of_task[task_id]] = doc
    finally:
        for manifest in manifests:
            unlink_segment(manifest)
    shards = [RunResult.from_dict(doc) for doc in docs]
    return ShardedRun(
        merged=merge_shard_results(shards),
        shards=shards,
        split_stats=stats,
        num_shards=num_shards,
    )


# ---------------------------------------------------------------------------
# Artifact grids
# ---------------------------------------------------------------------------


def grid_for(harness: Harness, artifact: str) -> List[Cell]:
    """The cells one artifact generator will request, in request order.

    Mirrors the loops in ``tables.py`` / ``figures.py`` so a parallel
    sweep can pre-warm the harness before the (sequential) generator
    renders.  Artifacts that only do MRC analysis (figure2, figure7)
    need profile traces, not runs, and contribute no cells.
    """
    splash2 = list(harness.splash2_workloads())
    everything = list(harness.all_workloads())
    cells: List[Cell] = []
    if artifact == "table1":
        for name in splash2:
            cells += [(name, "ER", 1), (name, "BEST", 1)]
    elif artifact == "table2":
        cells += [("mdb", t, 8) for t in ("ER", "AT", "SC", "SC-offline", "BEST")]
    elif artifact == "table3":
        for name in everything:
            cells += [(name, t, 1) for t in ("ER", "LA", "AT", "SC-offline", "SC")]
    elif artifact == "table4":
        for n in (1, 2, 4, 8, 16, 32):
            cells += [("water-spatial", t, n) for t in ("AT", "SC", "BEST")]
    elif artifact == "figure4":
        for name in everything:
            n = 8 if name == "mdb" else 1
            cells += [(name, t, n) for t in ("ER", "AT", "SC", "SC-offline", "BEST")]
    elif artifact == "figure5":
        for name in splash2:
            for n in (1, 2, 4, 8, 16, 32):
                cells += [(name, "AT", n), (name, "SC", n), (name, "SC-offline", n)]
    elif artifact == "figure6":
        for name in splash2:
            for n in (1, 2, 4, 8, 16, 32):
                cells += [(name, "SC", n), (name, "BEST", n)]
    elif artifact == "figure8":
        for name in splash2 + ["mdb"]:
            for n in (1, 8):
                cells += [(name, "SC", n), (name, "SC-offline", n)]
    elif artifact == "adaptation":
        cells += [(name, "SC", 1) for name in everything]
    elif artifact == "policyzoo":
        from repro.experiments.tables import POLICY_ZOO_SPECS, POLICY_ZOO_WORKLOADS

        for name in POLICY_ZOO_WORKLOADS:
            cells += [(name, spec, 1) for spec in POLICY_ZOO_SPECS]
    elif artifact in ("figure2", "figure7"):
        pass
    elif artifact == "all":
        seen = dict.fromkeys(
            cell
            for art in (
                "table1", "table2", "table3", "table4", "adaptation",
                "policyzoo", "figure4", "figure5", "figure6", "figure8",
            )
            for cell in grid_for(harness, art)
        )
        cells = list(seen)
    else:
        raise KeyError(f"no grid known for artifact {artifact!r}")
    return list(dict.fromkeys(cells))
