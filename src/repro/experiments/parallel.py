"""Process-parallel execution of experiment grids.

The harness's unit of work — one ``(workload, technique, threads)`` cell
under a frozen :class:`HarnessConfig` — is a pure, deterministic
function (``execute_cell``), so cells can run in any order in any
process and produce bit-identical results.  This module fans a grid over
``concurrent.futures.ProcessPoolExecutor`` in two phases:

1. **Summaries** — the distinct workloads with SC/SC-offline cells each
   need one profiling pass (single-thread BEST run + MRC knee).  Those
   are mapped over the pool first, because every SC cell of a workload
   depends on its summary and nothing else does.
2. **Cells** — every remaining cell is submitted with the summaries in
   hand; workers check the shared on-disk cache before simulating and
   publish what they compute, so concurrent invocations cooperate.

Everything shipped to workers is picklable by construction: frozen
config dataclasses, plain tuples, :class:`ProfileSummary`; results come
back as trace-free :class:`RunResult` dataclasses.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import (
    Cell,
    Harness,
    HarnessConfig,
    ProfileSummary,
)

#: Techniques whose cells require a profiling pass first.
_NEEDS_SUMMARY = ("SC", "SC-offline")


# ---------------------------------------------------------------------------
# Worker entry points (module-level: they must pickle by reference).
# ---------------------------------------------------------------------------


def _summary_worker(
    config: HarnessConfig, cache_dir: Optional[str], name: str
) -> Tuple[str, ProfileSummary]:
    """Phase 1: compute (or load from disk) one workload's summary."""
    harness = Harness(config, cache_dir=cache_dir)
    return name, harness.profile_summary(name)


def _cells_worker(
    config: HarnessConfig,
    cache_dir: Optional[str],
    summaries: Dict[str, ProfileSummary],
    cells: List[Cell],
):
    """Phase 2: compute (or load from disk) one group of grid cells.

    A group shares one ``(workload, threads)`` pair, so the worker's
    harness materializes the batch columns once and replays them for
    every technique — the same amortization the sequential sweep gets.
    """
    harness = Harness(config, cache_dir=cache_dir)
    harness.preload_summaries(summaries)
    return [
        (cell, harness.run(*cell))
        for cell in cells
    ]


# ---------------------------------------------------------------------------
# Grid execution
# ---------------------------------------------------------------------------


def run_grid_parallel(
    harness: Harness,
    cells: Sequence[Cell],
    jobs: int,
    progress=None,
):
    """Fan ``cells`` over ``jobs`` worker processes.

    Cells already in the harness's memory cache are served from it;
    everything computed by workers is folded back in, so the calling
    harness ends up in the same state as after a sequential sweep.

    ``progress``, if given, is called as ``progress(done, total, cell)``
    after every completed cell — the per-cell heartbeat long parallel
    sweeps print so a stalled worker is visible before the pool joins.
    A four-parameter callback additionally receives the cell's metric
    snapshot (:func:`repro.obs.live.snapshot_from_result`), computed
    parent-side from the worker's shipped result — no extra IPC.
    """
    from repro.obs.live import resolve_grid_progress

    notify = resolve_grid_progress(progress)
    cells = list(dict.fromkeys(cells))
    results: Dict[Cell, object] = {}
    pending: List[Cell] = []
    for cell in cells:
        cached = harness._runs.get(cell)
        if cached is not None:
            results[cell] = cached
            if notify is not None:
                notify(len(results), len(cells), cell, cached)
        else:
            pending.append(cell)
    if not pending:
        return results

    config = harness.config
    cache_dir = harness.cache_dir
    need_summary = sorted(
        {
            name
            for (name, technique, _threads) in pending
            if technique in _NEEDS_SUMMARY and name not in harness._summaries
        }
    )
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        if need_summary:
            futures = [
                pool.submit(_summary_worker, config, cache_dir, name)
                for name in need_summary
            ]
            for future in as_completed(futures):
                name, summary = future.result()
                harness._summaries[name] = summary
        summaries = dict(harness._summaries)
        # Group cells sharing a (workload, threads) pair: one worker
        # materializes that stream's batch columns once for all of the
        # group's techniques, instead of once per cell.
        groups: Dict[Tuple[str, int], List[Cell]] = {}
        for cell in pending:
            name, _technique, threads = cell
            groups.setdefault((name, threads), []).append(cell)
        futures = [
            pool.submit(_cells_worker, config, cache_dir, summaries, group)
            for group in groups.values()
        ]
        for future in as_completed(futures):
            for cell, result in future.result():
                harness._runs[cell] = result
                results[cell] = result
                if notify is not None:
                    notify(len(results), len(cells), cell, result)
    return results


# ---------------------------------------------------------------------------
# Artifact grids
# ---------------------------------------------------------------------------


def grid_for(harness: Harness, artifact: str) -> List[Cell]:
    """The cells one artifact generator will request, in request order.

    Mirrors the loops in ``tables.py`` / ``figures.py`` so a parallel
    sweep can pre-warm the harness before the (sequential) generator
    renders.  Artifacts that only do MRC analysis (figure2, figure7)
    need profile traces, not runs, and contribute no cells.
    """
    splash2 = list(harness.splash2_workloads())
    everything = list(harness.all_workloads())
    cells: List[Cell] = []
    if artifact == "table1":
        for name in splash2:
            cells += [(name, "ER", 1), (name, "BEST", 1)]
    elif artifact == "table2":
        cells += [("mdb", t, 8) for t in ("ER", "AT", "SC", "SC-offline", "BEST")]
    elif artifact == "table3":
        for name in everything:
            cells += [(name, t, 1) for t in ("ER", "LA", "AT", "SC-offline", "SC")]
    elif artifact == "table4":
        for n in (1, 2, 4, 8, 16, 32):
            cells += [("water-spatial", t, n) for t in ("AT", "SC", "BEST")]
    elif artifact == "figure4":
        for name in everything:
            n = 8 if name == "mdb" else 1
            cells += [(name, t, n) for t in ("ER", "AT", "SC", "SC-offline", "BEST")]
    elif artifact == "figure5":
        for name in splash2:
            for n in (1, 2, 4, 8, 16, 32):
                cells += [(name, "AT", n), (name, "SC", n), (name, "SC-offline", n)]
    elif artifact == "figure6":
        for name in splash2:
            for n in (1, 2, 4, 8, 16, 32):
                cells += [(name, "SC", n), (name, "BEST", n)]
    elif artifact == "figure8":
        for name in splash2 + ["mdb"]:
            for n in (1, 8):
                cells += [(name, "SC", n), (name, "SC-offline", n)]
    elif artifact == "adaptation":
        cells += [(name, "SC", 1) for name in everything]
    elif artifact in ("figure2", "figure7"):
        pass
    elif artifact == "all":
        seen = dict.fromkeys(
            cell
            for art in (
                "table1", "table2", "table3", "table4", "adaptation",
                "figure4", "figure5", "figure6", "figure8",
            )
            for cell in grid_for(harness, art)
        )
        cells = list(seen)
    else:
        raise KeyError(f"no grid known for artifact {artifact!r}")
    return list(dict.fromkeys(cells))
