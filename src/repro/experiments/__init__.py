"""The experiment harness: every table and figure of the paper's §IV.

- :mod:`repro.experiments.harness` — runs workload × technique × thread
  count on a fresh machine, with profiling (offline MRC / size
  selection) and per-instance result caching.
- :mod:`repro.experiments.tables` — Tables I, II, III and IV.
- :mod:`repro.experiments.figures` — Figures 2, 4, 5, 6, 7 and 8.
- :mod:`repro.experiments.metrics` — means, speedups, formatting.
- :mod:`repro.experiments.report` — regenerates EXPERIMENTS.md.
- ``python -m repro.experiments <artifact>`` — command-line entry point.
"""

from repro.experiments.harness import Harness, HarnessConfig

__all__ = ["Harness", "HarnessConfig"]
