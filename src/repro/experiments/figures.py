"""Figures 2, 4, 5, 6, 7 and 8 of the paper's evaluation.

Each ``figureN`` function returns an :class:`~repro.experiments.tables.Artifact`
whose ``series`` dict holds the plotted data (series name → x → y) and
whose ``text`` is a monospace rendering.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.experiments.harness import Harness
from repro.experiments.metrics import (
    arithmetic_mean,
    ascii_series,
    format_table,
    speedup,
)
from repro.experiments.tables import Artifact
from repro.locality.knee import find_knees, select_cache_size
from repro.locality.mrc import mrc_from_trace
from repro.locality.stack_distance import exact_mrc
from repro.locality.sampling import sampled_mrc

#: Programs shown in Fig. 7's MRC-accuracy panels.
FIG7_PROGRAMS = ("barnes", "fmm", "water-nsquared", "water-spatial")

#: Paper §IV-G: the cache sizes the knee rule selected per program.
PAPER_SELECTED_SIZES = {
    "barnes": 15,
    "fmm": 10,
    "ocean": 2,
    "raytrace": 8,
    "volrend": 3,
    "water-nsquared": 28,
    "water-spatial": 23,
    "mdb": 20,
}


def figure2(harness: Harness, max_size: int = 50) -> Artifact:
    """Fig. 2: the MRC of water-spatial and the selected knee."""
    mrc = harness.offline_mrc("water-spatial")
    sizes = list(range(1, max_size + 1))
    ratios = mrc.miss_ratios_at(np.asarray(sizes, dtype=float))
    selected = select_cache_size(mrc, harness.config.selection)
    knees = find_knees(mrc, harness.config.selection)
    art = Artifact("figure2", "Figure 2: MRC of water-spatial")
    art.series["miss_ratio"] = {"x": sizes, "y": [float(v) for v in ratios]}
    art.rows = [
        {
            "selected_size": selected,
            "paper_selected_size": PAPER_SELECTED_SIZES["water-spatial"],
            "knees": [k.size for k in knees],
        }
    ]
    shown = [1, 2, 4, 8, 16, 20, 22, 23, 24, 26, 32, 40, 50]
    art.text = (
        format_table(
            ["size", "miss ratio"],
            [[s, f"{float(ratios[s - 1]):.5f}"] for s in shown],
        )
        + f"\nselected size = {selected} (paper: 23); "
        f"candidate knees = {[k.size for k in knees]}"
    )
    return art


def figure4(harness: Harness) -> Artifact:
    """Fig. 4: single-thread speedups over ER (mdb uses 8 threads)."""
    techniques = ["AT", "SC", "SC-offline", "BEST"]
    workloads = [w for w in harness.all_workloads()]
    rows = []
    for name in workloads:
        threads = 8 if name == "mdb" else 1
        er = harness.run(name, "ER", threads)
        row: Dict[str, object] = {"benchmark": name}
        for t in techniques:
            row[t] = round(speedup(er, harness.run(name, t, threads)), 2)
        rows.append(row)
    avg = {"benchmark": "average"}
    for t in techniques:
        avg[t] = round(arithmetic_mean(r[t] for r in rows), 2)
    rows.append(avg)
    art = Artifact("figure4", "Figure 4: speedups over ER")
    art.rows = rows
    for t in techniques:
        art.series[t] = {
            "x": [r["benchmark"] for r in rows],
            "y": [r[t] for r in rows],
        }
    art.text = format_table(
        ["benchmark"] + techniques,
        [[r["benchmark"]] + [f"{r[t]}x" for t in techniques] for r in rows],
    )
    return art


def figure5(
    harness: Harness, threads: Optional[Sequence[int]] = None
) -> Artifact:
    """Fig. 5: SC and SC-offline over AT across thread counts."""
    threads = list(threads or (1, 2, 4, 8, 16, 32))
    art = Artifact("figure5", "Figure 5: parallel speedup of SC over AT")
    rows = []
    for name in harness.splash2_workloads():
        for n in threads:
            at = harness.run(name, "AT", n)
            sc = harness.run(name, "SC", n)
            sco = harness.run(name, "SC-offline", n)
            rows.append(
                {
                    "benchmark": name,
                    "threads": n,
                    "sc_over_at": round(speedup(at, sc), 3),
                    "sco_over_at": round(speedup(at, sco), 3),
                }
            )
    art.rows = rows
    for name in harness.splash2_workloads():
        sub = [r for r in rows if r["benchmark"] == name]
        art.series[name] = {
            "x": [r["threads"] for r in sub],
            "sc_over_at": [r["sc_over_at"] for r in sub],
            "sco_over_at": [r["sco_over_at"] for r in sub],
        }
    art.text = format_table(
        ["benchmark", "threads", "SC/AT", "SC-offline/AT"],
        [
            [r["benchmark"], r["threads"], f"{r['sc_over_at']}x", f"{r['sco_over_at']}x"]
            for r in rows
        ],
    )
    return art


def figure6(
    harness: Harness, threads: Optional[Sequence[int]] = None
) -> Artifact:
    """Fig. 6: slowdown of SC relative to BEST across thread counts."""
    threads = list(threads or (1, 2, 4, 8, 16, 32))
    art = Artifact("figure6", "Figure 6: slowdown of SC over BEST")
    rows = []
    for name in harness.splash2_workloads():
        for n in threads:
            sc = harness.run(name, "SC", n)
            best = harness.run(name, "BEST", n)
            rows.append(
                {
                    "benchmark": name,
                    "threads": n,
                    "slowdown": round(sc.time / best.time, 3),
                }
            )
    art.rows = rows
    for name in harness.splash2_workloads():
        sub = [r for r in rows if r["benchmark"] == name]
        art.series[name] = {
            "x": [r["threads"] for r in sub],
            "slowdown": [r["slowdown"] for r in sub],
        }
    art.text = format_table(
        ["benchmark", "threads", "SC/BEST slowdown"],
        [[r["benchmark"], r["threads"], f"{r['slowdown']}x"] for r in rows],
    )
    return art


def figure7(
    harness: Harness,
    programs: Sequence[str] = FIG7_PROGRAMS,
    max_size: int = 50,
) -> Artifact:
    """Fig. 7: actual vs full-trace (offline) vs sampled (online) MRC.

    'Actual' is the exact miss ratio of a FASE-drained write-combining
    LRU cache, from classical stack distances (Mattson) — provably equal
    to per-size simulation; 'full-trace' is the paper's linear-time
    theory over the whole trace; 'sampled' is the same theory over one
    online burst.  The claim under test: sampling preserves the
    inflection points that drive size selection.
    """
    art = Artifact("figure7", "Figure 7: MRC prediction accuracy")
    sizes = [1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 28, 32, 40, 50]
    rows = []
    for name in programs:
        trace = harness.trace(name)
        full = mrc_from_trace(trace)
        sampled = sampled_mrc(trace, harness.burst_length(name))
        actual = exact_mrc(trace).miss_ratios_at(np.asarray(sizes, dtype=float))
        full_v = full.miss_ratios_at(np.asarray(sizes, dtype=float))
        samp_v = sampled.miss_ratios_at(np.asarray(sizes, dtype=float))
        art.series[name] = {
            "x": sizes,
            "actual": [float(v) for v in actual],
            "full_trace": [float(v) for v in full_v],
            "sampled": [float(v) for v in samp_v],
        }
        rows.append(
            {
                "benchmark": name,
                "selected_full": select_cache_size(full, harness.config.selection),
                "selected_sampled": select_cache_size(
                    sampled, harness.config.selection
                ),
                "paper_selected": PAPER_SELECTED_SIZES.get(name),
            }
        )
    art.rows = rows
    blocks = []
    for name in programs:
        s = art.series[name]
        blocks.append(
            ascii_series(
                {
                    "actual": s["actual"],
                    "full": s["full_trace"],
                    "sampled": s["sampled"],
                },
                s["x"],
                title=f"-- {name} --",
            )
        )
    blocks.append(
        format_table(
            ["benchmark", "size(full)", "size(sampled)", "paper"],
            [
                [r["benchmark"], r["selected_full"], r["selected_sampled"],
                 r["paper_selected"]]
                for r in rows
            ],
        )
    )
    art.text = "\n\n".join(blocks)
    return art


def figure8(
    harness: Harness, thread_counts: Sequence[int] = (1, 8)
) -> Artifact:
    """Fig. 8: the time cost of online cache-size selection.

    The paper measures "the difference of the running time between using
    the preset size and finding the size online": here, SC (online)
    versus SC-offline (preset best size), as a percentage of SC's time.
    The paper's average is 6.78%.
    """
    art = Artifact("figure8", "Figure 8: online selection overhead")
    workloads = list(harness.splash2_workloads()) + ["mdb"]
    rows = []
    for name in workloads:
        for n in thread_counts:
            sc = harness.run(name, "SC", n)
            sco = harness.run(name, "SC-offline", n)
            overhead = max(0.0, (sc.time - sco.time) / sc.time * 100.0)
            rows.append(
                {"benchmark": name, "threads": n, "overhead_pct": round(overhead, 2)}
            )
    avg = arithmetic_mean(r["overhead_pct"] for r in rows)
    rows.append(
        {"benchmark": "average", "threads": "-", "overhead_pct": round(avg, 2)}
    )
    art.rows = rows
    art.series["overhead"] = {
        "x": [f"{r['benchmark']}/{r['threads']}" for r in rows],
        "y": [r["overhead_pct"] for r in rows],
    }
    art.text = format_table(
        ["benchmark", "threads", "overhead %  (paper avg 6.78%)"],
        [[r["benchmark"], r["threads"], f"{r['overhead_pct']}%"] for r in rows],
    )
    return art
