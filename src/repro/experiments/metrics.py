"""Shared metric and formatting helpers for tables and figures."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.nvram.stats import RunResult


def speedup(base: RunResult, other: RunResult) -> float:
    """How much faster ``other`` is than ``base`` (model time ratio)."""
    if other.time == 0:
        raise ConfigurationError("cannot compute a speedup over zero time")
    return base.time / other.time


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain average (what the paper's 'average' rows use)."""
    values = list(values)
    if not values:
        raise ConfigurationError("mean of no values")
    return float(np.mean(values))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (robust for speedup summaries)."""
    values = np.asarray(list(values), dtype=np.float64)
    if len(values) == 0 or np.any(values <= 0):
        raise ConfigurationError("geometric mean needs positive values")
    return float(np.exp(np.mean(np.log(values))))


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned plain-text table (monospace output)."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def ascii_series(
    series: Dict[str, Sequence[float]],
    xlabel: Sequence[object],
    width: int = 60,
    title: str = "",
) -> str:
    """A compact textual rendering of figure series (values per x)."""
    lines = []
    if title:
        lines.append(title)
    header = ["x"] + list(series.keys())
    rows: List[List[object]] = []
    for i, x in enumerate(xlabel):
        rows.append([x] + [f"{series[k][i]:.4g}" for k in series])
    lines.append(format_table(header, rows))
    return "\n".join(lines)
