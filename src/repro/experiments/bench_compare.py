"""Diff two ``BENCH_<date>.json`` trajectory points; gate on regression.

The committed BENCH files form a perf trajectory across PRs (see
:mod:`repro.experiments.bench`).  This module compares a *base* and a
*new* document case-by-case on the pinned simulator suite and fails when
the geometric-mean batched-path throughput regresses by more than a
threshold — the guard that keeps the batched fast path fast while layers
(like ``repro.obs``) grow around it.

Rules:

- Documents must share a ``schema_version``; files written before the
  field existed are schema 1 (the row shape is unchanged).  Cross-schema
  diffs are refused (exit code 2) rather than silently misread.
- The gated metrics are ``batched_eps`` (events/second on the batched
  fast path, geometric mean over the (workload, technique) cases both
  documents measured) and — when both documents carry them — the trace
  analyzer's events/second and the streaming recorder's spill-inclusive
  events/second.  ``per_event_eps`` and the reuse-accumulator
  throughput ride along as informational rows; a baseline written
  before the analyzer, streaming_recorder or policy_zoo bench existed
  is still comparable (that gate is skipped with a note).
- Absolute gates read the *new* document only: the harness parallel
  speedup floor, the streaming recorder's overhead ceiling, and the
  fleet telemetry bus's overhead ceiling (``fleet_overhead`` <=
  ``FLEET_OVERHEAD_CEILING``, advisory when the host cannot run the
  workers).  A new document missing such a section is noted, not failed.
- Quick-mode documents use smaller pinned scales, so a quick-vs-full
  diff is flagged in the report; the throughput comparison stays
  meaningful (events/second, not wall clock) but CI should pair it with
  a generous threshold.

Usage::

    python tools/bench_compare.py BENCH_2026-08-06.json BENCH_new.json
    python tools/bench_compare.py base.json new.json --max-regress 3
    python tools/bench_compare.py --ledger .ledger BENCH_new.json

``--ledger`` replaces the single base file with the EWMA-fitted trend
over every bench record in the run ledger (:mod:`repro.obs.ledger`) —
the multi-baseline mode: one noisy committed point cannot skew the
gate the way a hand-picked pair can.  Seed history from committed
files with ``python -m repro.experiments history --import BENCH_*.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.experiments.metrics import format_table, geometric_mean

#: Default tolerated geomean throughput regression, percent.
DEFAULT_MAX_REGRESS = 3.0

#: Absolute gates on the *new* document (not ratios): the harness
#: parallel sweep must beat sequential by this factor at >= 4 jobs, and
#: the streaming recorder's spill-inclusive run must stay within this
#: multiple of the null-recorder run.  The parallel gate only binds when
#: the host can actually run the workers (``advisory`` false, i.e.
#: ``cpus_available >= jobs``) — a single-CPU container serializes the
#: workers and measures pure overhead, which is a host artifact, noted
#: rather than failed.
PARALLEL_SPEEDUP_FLOOR = 2.0
PARALLEL_GATE_MIN_JOBS = 4
STREAMING_OVERHEAD_CEILING = 1.5
#: Fleet telemetry bus on a parallel grid: events, resource sampler,
#: JSONL spill and span export together must stay within this multiple
#: of the bare pool.  Advisory (noted, not gated) when the host has
#: fewer schedulable cores than workers — the pump then contends with
#: the serialized workers for the same CPU, a host artifact.
FLEET_OVERHEAD_CEILING = 1.10
#: Provenance-ledger recording on one pinned run must stay within this
#: multiple of the same run with ``REPRO_LEDGER=off`` — automatic
#: provenance only stays on by default while it stays in the noise.
LEDGER_OVERHEAD_CEILING = 1.05

#: Exit codes: 0 ok, 1 regression beyond threshold, 2 incomparable docs.
EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_INCOMPARABLE = 2


def load_bench(path: str) -> Dict:
    """Load one BENCH document from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if "simulator" not in doc:
        raise ConfigurationError(f"{path}: not a BENCH document (no 'simulator')")
    return doc


def schema_version(doc: Dict) -> int:
    """The document's schema version; pre-field files are schema 1."""
    return int(doc.get("schema_version", 1))


def compare(
    base: Dict, new: Dict, max_regress: float = DEFAULT_MAX_REGRESS
) -> Dict:
    """Compare two BENCH documents; return the structured verdict.

    Raises :class:`ConfigurationError` when the documents cannot be
    compared (schema mismatch, or no common simulator cases).
    """
    base_schema, new_schema = schema_version(base), schema_version(new)
    if base_schema != new_schema:
        raise ConfigurationError(
            f"cannot diff across schemas: base is schema {base_schema}, "
            f"new is schema {new_schema}"
        )
    base_rows = {(r["workload"], r["technique"]): r for r in base["simulator"]}
    new_rows = {(r["workload"], r["technique"]): r for r in new["simulator"]}
    common = [k for k in base_rows if k in new_rows]
    if not common:
        raise ConfigurationError("the documents share no simulator cases")

    cases: List[Dict] = []
    for key in common:
        b, n = base_rows[key], new_rows[key]
        cases.append(
            {
                "workload": key[0],
                "technique": key[1],
                "base_batched_eps": b["batched_eps"],
                "new_batched_eps": n["batched_eps"],
                "batched_ratio": n["batched_eps"] / b["batched_eps"],
                "per_event_ratio": n["per_event_eps"] / b["per_event_eps"],
            }
        )
    batched_geomean = geometric_mean(c["batched_ratio"] for c in cases)
    per_event_geomean = geometric_mean(c["per_event_ratio"] for c in cases)
    regress_pct = (1.0 - batched_geomean) * 100.0

    notes: List[str] = []
    if bool(base.get("quick")) != bool(new.get("quick")):
        notes.append(
            "quick flags differ (pinned scales differ between the runs); "
            "events/sec comparison is approximate"
        )
    dropped = sorted(set(base_rows) - set(new_rows))
    if dropped:
        notes.append(f"cases only in base (not compared): {dropped}")
    added = sorted(set(new_rows) - set(base_rows))
    if added:
        notes.append(f"cases only in new (not compared): {added}")
    reuse_ratio: Optional[float] = None
    if "reuse_counts" in base and "reuse_counts" in new:
        reuse_ratio = (
            new["reuse_counts"]["intervals_per_sec"]
            / base["reuse_counts"]["intervals_per_sec"]
        )
    analyzer_ratio: Optional[float] = None
    analyzer_regress_pct: Optional[float] = None
    if "analyzer" in base and "analyzer" in new:
        analyzer_ratio = (
            new["analyzer"]["events_per_sec"] / base["analyzer"]["events_per_sec"]
        )
        analyzer_regress_pct = (1.0 - analyzer_ratio) * 100.0
    else:
        missing = [
            label
            for label, doc in (("base", base), ("new", new))
            if "analyzer" not in doc
        ]
        notes.append(
            f"no analyzer bench in {'/'.join(missing)} (older document); "
            f"analyzer throughput not gated"
        )

    streaming_ratio: Optional[float] = None
    streaming_regress_pct: Optional[float] = None
    if "streaming_recorder" in base and "streaming_recorder" in new:
        streaming_ratio = (
            new["streaming_recorder"]["streaming_eps"]
            / base["streaming_recorder"]["streaming_eps"]
        )
        streaming_regress_pct = (1.0 - streaming_ratio) * 100.0
    else:
        missing = [
            label
            for label, doc in (("base", base), ("new", new))
            if "streaming_recorder" not in doc
        ]
        notes.append(
            f"no streaming_recorder bench in {'/'.join(missing)} "
            f"(older document); streaming throughput not gated"
        )

    policy_zoo_ratio: Optional[float] = None
    policy_zoo_regress_pct: Optional[float] = None
    if "policy_zoo" in base and "policy_zoo" in new:
        zoo_base = {r["spec"]: r for r in base["policy_zoo"]}
        zoo_new = {r["spec"]: r for r in new["policy_zoo"]}
        zoo_common = [s for s in zoo_base if s in zoo_new]
        if zoo_common:
            policy_zoo_ratio = geometric_mean(
                zoo_new[s]["eps"] / zoo_base[s]["eps"] for s in zoo_common
            )
            policy_zoo_regress_pct = (1.0 - policy_zoo_ratio) * 100.0
        else:
            notes.append(
                "policy_zoo sections share no specs; policy-zoo "
                "throughput not gated"
            )
    else:
        missing = [
            label
            for label, doc in (("base", base), ("new", new))
            if "policy_zoo" not in doc
        ]
        notes.append(
            f"no policy_zoo bench in {'/'.join(missing)} "
            f"(older document); policy-zoo throughput not gated"
        )

    # -- absolute gates on the new document -----------------------------
    parallel_speedup: Optional[float] = None
    parallel_gate: Optional[str] = None
    harness = new.get("harness") or {}
    if "parallel_speedup" in harness:
        parallel_speedup = float(harness["parallel_speedup"])
        jobs = int(harness.get("jobs") or 0)
        advisory = harness.get("advisory")
        available = harness.get("cpus_available", harness.get("cpus"))
        if advisory is None:
            advisory = (
                available is not None and jobs > 0 and available < jobs
            )
        if advisory:
            parallel_gate = "advisory"
            notes.append(
                f"harness parallel section advisory (cpus_available "
                f"{available} < jobs {jobs}): speedup "
                f"{parallel_speedup}x noted, not gated"
            )
        elif jobs < PARALLEL_GATE_MIN_JOBS:
            parallel_gate = "advisory"
            notes.append(
                f"harness parallel sweep ran with jobs={jobs} < "
                f"{PARALLEL_GATE_MIN_JOBS}: speedup {parallel_speedup}x "
                f"noted, not gated (the {PARALLEL_SPEEDUP_FLOOR}x floor "
                f"is defined at {PARALLEL_GATE_MIN_JOBS} jobs)"
            )
        else:
            parallel_gate = (
                "pass" if parallel_speedup >= PARALLEL_SPEEDUP_FLOOR else "fail"
            )

    streaming_overhead: Optional[float] = None
    streaming_gate: Optional[str] = None
    streaming = new.get("streaming_recorder") or {}
    if "streaming_overhead" in streaming:
        streaming_overhead = float(streaming["streaming_overhead"])
        streaming_gate = (
            "pass" if streaming_overhead <= STREAMING_OVERHEAD_CEILING else "fail"
        )

    fleet_overhead: Optional[float] = None
    fleet_gate: Optional[str] = None
    fleet = new.get("fleet_overhead") or {}
    if "fleet_overhead" in fleet:
        fleet_overhead = float(fleet["fleet_overhead"])
        if fleet.get("advisory"):
            fleet_gate = "advisory"
            notes.append(
                f"fleet_overhead section advisory (cpus_available "
                f"{fleet.get('cpus_available')} < jobs {fleet.get('jobs')}): "
                f"overhead {fleet_overhead}x noted, not gated"
            )
        else:
            fleet_gate = (
                "pass" if fleet_overhead <= FLEET_OVERHEAD_CEILING else "fail"
            )
    else:
        notes.append(
            "no fleet_overhead bench in new (older document); "
            "fleet telemetry overhead not gated"
        )

    ledger_overhead: Optional[float] = None
    ledger_gate: Optional[str] = None
    ledger_bench = new.get("ledger") or {}
    if "ledger_overhead" in ledger_bench:
        ledger_overhead = float(ledger_bench["ledger_overhead"])
        ledger_gate = (
            "pass" if ledger_overhead < LEDGER_OVERHEAD_CEILING else "fail"
        )
    else:
        notes.append(
            "no ledger bench in new (older document); "
            "ledger recording overhead not gated"
        )

    ok = (
        regress_pct <= max_regress
        and (analyzer_regress_pct is None or analyzer_regress_pct <= max_regress)
        and (streaming_regress_pct is None or streaming_regress_pct <= max_regress)
        and (
            policy_zoo_regress_pct is None
            or policy_zoo_regress_pct <= max_regress
        )
        and parallel_gate != "fail"
        and streaming_gate != "fail"
        and fleet_gate != "fail"
        and ledger_gate != "fail"
    )
    return {
        "schema_version": base_schema,
        "cases": cases,
        "batched_geomean": batched_geomean,
        "per_event_geomean": per_event_geomean,
        "reuse_ratio": reuse_ratio,
        "analyzer_ratio": analyzer_ratio,
        "analyzer_regress_pct": analyzer_regress_pct,
        "streaming_ratio": streaming_ratio,
        "streaming_regress_pct": streaming_regress_pct,
        "policy_zoo_ratio": policy_zoo_ratio,
        "policy_zoo_regress_pct": policy_zoo_regress_pct,
        "parallel_speedup": parallel_speedup,
        "parallel_gate": parallel_gate,
        "streaming_overhead": streaming_overhead,
        "streaming_gate": streaming_gate,
        "fleet_overhead": fleet_overhead,
        "fleet_gate": fleet_gate,
        "ledger_overhead": ledger_overhead,
        "ledger_gate": ledger_gate,
        "regress_pct": regress_pct,
        "max_regress": max_regress,
        "ok": ok,
        "notes": notes,
    }


def fitted_base(ledger_dir: str, new: Dict) -> Dict:
    """Synthesize a baseline document from the ledger's bench timeline.

    The multi-baseline mode: instead of one hand-picked prior file, fit
    an EWMA (:func:`repro.obs.history.ewma`) over *every* recorded bench
    document of the new document's schema — per simulator case, per
    policy-zoo spec, and over the single-number sections — and return a
    document shaped like a BENCH file, so :func:`compare` gates the new
    run against the fitted trend.  A record wrapping the new document
    itself (``tools/bench.py`` records before the comparison runs) is
    excluded so the candidate cannot drag its own baseline.  Raises
    :class:`ConfigurationError` when the ledger holds no usable bench
    history.
    """
    from repro.obs.history import ewma
    from repro.obs.ledger import RunLedger

    docs: List[Dict] = []
    for record in RunLedger(ledger_dir).records(kind="bench"):
        doc = record.extra.get("bench")
        if not isinstance(doc, dict) or "simulator" not in doc:
            continue
        if schema_version(doc) != schema_version(new):
            continue
        if doc == new:
            continue
        docs.append(doc)
    if not docs:
        raise ConfigurationError(
            f"ledger {ledger_dir!r} holds no bench records of schema "
            f"{schema_version(new)}; record or import a baseline first "
            f"(history --import BENCH_<date>.json)"
        )

    def fit(series: List) -> Optional[float]:
        values = [
            float(v)
            for v in series
            if isinstance(v, (int, float)) and not isinstance(v, bool) and v > 0
        ]
        return round(ewma(values)[-1], 3) if values else None

    base: Dict = {
        "schema_version": schema_version(new),
        "quick": bool(docs[-1].get("quick")),
        "date": f"fitted-from-{len(docs)}",
        "fitted_from": len(docs),
        "simulator": [],
    }
    cases: Dict = {}
    for doc in docs:
        for row in doc.get("simulator", []):
            cases.setdefault((row["workload"], row["technique"]), []).append(row)
    for (workload, technique), rows in cases.items():
        batched = fit([r.get("batched_eps") for r in rows])
        per_event = fit([r.get("per_event_eps") for r in rows])
        if batched is None or per_event is None:
            continue
        base["simulator"].append(
            {
                "workload": workload,
                "technique": technique,
                "batched_eps": batched,
                "per_event_eps": per_event,
            }
        )
    reuse = fit(
        [(d.get("reuse_counts") or {}).get("intervals_per_sec") for d in docs]
    )
    if reuse is not None:
        base["reuse_counts"] = {"intervals_per_sec": reuse}
    analyzer = fit([(d.get("analyzer") or {}).get("events_per_sec") for d in docs])
    if analyzer is not None:
        base["analyzer"] = {"events_per_sec": analyzer}
    streaming = fit(
        [(d.get("streaming_recorder") or {}).get("streaming_eps") for d in docs]
    )
    if streaming is not None:
        base["streaming_recorder"] = {"streaming_eps": streaming}
    zoo: Dict = {}
    for doc in docs:
        for row in doc.get("policy_zoo") or []:
            zoo.setdefault(row["spec"], []).append(row.get("eps"))
    zoo_rows = [
        {"spec": spec, "eps": fitted}
        for spec, series in zoo.items()
        if (fitted := fit(series)) is not None
    ]
    if zoo_rows:
        base["policy_zoo"] = zoo_rows
    return base


def format_report(verdict: Dict) -> str:
    """Render the verdict as an aligned plain-text report."""
    rows = [
        [
            c["workload"],
            c["technique"],
            c["base_batched_eps"],
            c["new_batched_eps"],
            f"{c['batched_ratio']:.3f}x",
            f"{c['per_event_ratio']:.3f}x",
        ]
        for c in verdict["cases"]
    ]
    lines = [
        format_table(
            ["workload", "technique", "base eps", "new eps", "batched", "per-event"],
            rows,
        ),
        "",
        f"batched geomean    {verdict['batched_geomean']:.3f}x "
        f"(regression {verdict['regress_pct']:+.1f}%, "
        f"threshold {verdict['max_regress']:.1f}%)",
        f"per-event geomean  {verdict['per_event_geomean']:.3f}x",
    ]
    if verdict["reuse_ratio"] is not None:
        lines.append(f"reuse_counts       {verdict['reuse_ratio']:.3f}x")
    if verdict.get("analyzer_ratio") is not None:
        lines.append(
            f"analyzer           {verdict['analyzer_ratio']:.3f}x "
            f"(regression {verdict['analyzer_regress_pct']:+.1f}%, "
            f"threshold {verdict['max_regress']:.1f}%)"
        )
    if verdict.get("streaming_ratio") is not None:
        lines.append(
            f"streaming_recorder {verdict['streaming_ratio']:.3f}x "
            f"(regression {verdict['streaming_regress_pct']:+.1f}%, "
            f"threshold {verdict['max_regress']:.1f}%)"
        )
    if verdict.get("policy_zoo_ratio") is not None:
        lines.append(
            f"policy_zoo         {verdict['policy_zoo_ratio']:.3f}x "
            f"(regression {verdict['policy_zoo_regress_pct']:+.1f}%, "
            f"threshold {verdict['max_regress']:.1f}%)"
        )
    if verdict.get("parallel_speedup") is not None:
        gate = verdict["parallel_gate"]
        lines.append(
            f"parallel_speedup   {verdict['parallel_speedup']:.2f}x "
            f"(floor {PARALLEL_SPEEDUP_FLOOR:.1f}x at "
            f">= {PARALLEL_GATE_MIN_JOBS} jobs: {gate})"
        )
    if verdict.get("streaming_overhead") is not None:
        lines.append(
            f"streaming_overhead {verdict['streaming_overhead']:.3f}x "
            f"(ceiling {STREAMING_OVERHEAD_CEILING:.1f}x: "
            f"{verdict['streaming_gate']})"
        )
    if verdict.get("fleet_overhead") is not None:
        lines.append(
            f"fleet_overhead     {verdict['fleet_overhead']:.3f}x "
            f"(ceiling {FLEET_OVERHEAD_CEILING:.2f}x: "
            f"{verdict['fleet_gate']})"
        )
    if verdict.get("ledger_overhead") is not None:
        lines.append(
            f"ledger_overhead    {verdict['ledger_overhead']:.3f}x "
            f"(ceiling {LEDGER_OVERHEAD_CEILING:.2f}x: "
            f"{verdict['ledger_gate']})"
        )
    for note in verdict["notes"]:
        lines.append(f"note: {note}")
    lines.append("PASS" if verdict["ok"] else "FAIL: perf gate violated")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench-compare",
        description="Diff two BENCH_*.json files; fail on geomean "
        "batched-throughput regression beyond the threshold.",
    )
    parser.add_argument(
        "base",
        nargs="?",
        default=None,
        help="baseline BENCH_*.json (omit with --ledger)",
    )
    parser.add_argument("new", help="candidate BENCH_*.json to vet")
    parser.add_argument(
        "--max-regress",
        type=float,
        default=DEFAULT_MAX_REGRESS,
        metavar="PCT",
        help=f"tolerated geomean regression in percent "
        f"(default {DEFAULT_MAX_REGRESS})",
    )
    parser.add_argument(
        "--ledger",
        default=None,
        metavar="DIR",
        help="gate against the EWMA-fitted trend of this run ledger's "
        "bench records instead of one baseline file",
    )
    args = parser.parse_args(argv)
    if (args.base is None) == (args.ledger is None):
        print(
            "bench-compare: give exactly one baseline — a base file, "
            "or --ledger DIR",
            file=sys.stderr,
        )
        return EXIT_INCOMPARABLE
    try:
        new = load_bench(args.new)
        if args.ledger is not None:
            base = fitted_base(args.ledger, new)
        else:
            base = load_bench(args.base)
        verdict = compare(base, new, args.max_regress)
        if args.ledger is not None:
            verdict["notes"].append(
                f"baseline fitted (EWMA) from {base['fitted_from']} ledger "
                f"bench record(s) in {args.ledger}"
            )
    except (ConfigurationError, OSError, json.JSONDecodeError) as exc:
        print(f"bench-compare: {exc}", file=sys.stderr)
        return EXIT_INCOMPARABLE
    print(format_report(verdict))
    return EXIT_OK if verdict["ok"] else EXIT_REGRESSION


if __name__ == "__main__":
    sys.exit(main())
