"""The Mtest workload (§IV-C).

"The workload inserts 1 million key/value pairs along with many
traversals and deletions.  In the entire execution, there are 65 558 123
persistent memory stores.  The number of durable FASEs is 100 516.  Each
has 652 persistent memory stores on average."

The scaled reproduction inserts ``pairs`` keys in batches of
``batch_size`` puts per write transaction, interleaves snapshot traversals, and
deletes a fraction of the keys.  With the default 512-byte pages a
write transaction copies ~10 leaf pages plus shared branch pages —
several hundred stores per FASE, the same order as the paper's 652.

Threading mirrors MDB's MVCC: thread 0 is the (single) writer; the
remaining threads are lock-free snapshot readers whose traversals
generate load traffic (hardware-cache contention) but no flushes —
"readers … run in parallel with writers".
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List

from repro.common.errors import ConfigurationError
from repro.common.events import Event
from repro.common.rng import derive_seed, make_rng
from repro.mdb.kvstore import MdbStore
from repro.mdb.ops import RecordingOps
from repro.workloads.base import Workload


class ChannelRecordingOps(RecordingOps):
    """A recording backend with one event channel per simulated thread.

    The store logic runs once, single-threaded; events land in the
    channel selected at the time (writer transactions in channel 0,
    reader traversals in their reader's channel).  The machine then
    interleaves the channels by simulated time.
    """

    def __init__(self, channels: int, load_sample: int = 4) -> None:
        super().__init__(load_sample=load_sample)
        if channels < 1:
            raise ConfigurationError("need at least one channel")
        self.channels: List[List[Event]] = [[] for _ in range(channels)]
        self._current = 0
        self.events = self.channels[0]

    @contextmanager
    def on_channel(self, idx: int) -> Iterator[None]:
        """Route events to channel ``idx`` for the duration."""
        prev = self._current
        self._current = idx
        self.events = self.channels[idx]
        try:
            yield
        finally:
            self._current = prev
            self.events = self.channels[prev]


class MtestWorkload(Workload):
    """Scaled Mtest: batched inserts + snapshot traversals + deletions."""

    name = "mdb"

    def __init__(
        self,
        pairs: int = 20_000,
        batch_size: int = 24,
        delete_fraction: float = 0.1,
        traversals: int = 6,
        page_size: int = 512,
    ) -> None:
        if pairs < 1:
            raise ConfigurationError("pairs must be >= 1")
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if not 0 <= delete_fraction <= 1:
            raise ConfigurationError("delete_fraction must be in [0, 1]")
        self.pairs = pairs
        self.batch_size = batch_size
        self.delete_fraction = delete_fraction
        self.traversals = traversals
        self.page_size = page_size

    def supports_threads(self, num_threads: int) -> bool:
        return num_threads >= 1

    def store_threads(self, num_threads: int) -> int:
        return 1   # MVCC: a single writer; readers never store

    def streams(self, num_threads: int, seed: int) -> List[Iterator[Event]]:
        ops = ChannelRecordingOps(num_threads)
        rng = make_rng(derive_seed(seed, "mtest"))
        store = MdbStore(ops, page_size=self.page_size)

        keys = rng.permutation(self.pairs * 4)[: self.pairs].tolist()
        n_batches = (len(keys) + self.batch_size - 1) // self.batch_size
        # Spread reader activity evenly through the insert phase.
        reader_every = max(1, n_batches // max(1, self.traversals))
        n_readers = max(0, num_threads - 1)

        def reader_pass(pass_idx: int) -> None:
            """Each reader thread: a snapshot scan plus point lookups."""
            for r in range(n_readers):
                with ops.on_channel(1 + r):
                    txn = store.read_txn()
                    seen = 0
                    for _ in txn.scan():
                        seen += 1
                    for _ in range(32):
                        txn.get(int(rng.integers(0, self.pairs * 4)))
                    ops.work(seen // 4)

        # Insert phase: batched write transactions in channel 0.
        for b in range(n_batches):
            batch = keys[b * self.batch_size : (b + 1) * self.batch_size]
            with store.write_txn() as txn:
                for k in batch:
                    txn.put(int(k), int(k) * 3 + 1)
            if n_readers and b % reader_every == reader_every - 1:
                reader_pass(b)

        # Delete phase: batched deletions of a random subset.
        n_delete = int(self.pairs * self.delete_fraction)
        doomed = rng.choice(len(keys), size=n_delete, replace=False)
        doomed_keys = [keys[i] for i in doomed]
        for b in range(0, n_delete, self.batch_size):
            batch = doomed_keys[b : b + self.batch_size]
            with store.write_txn() as txn:
                for k in batch:
                    txn.delete(int(k))

        # A final verification pass by the readers.
        if n_readers:
            reader_pass(n_batches)

        return [iter(ch) for ch in ops.channels]
