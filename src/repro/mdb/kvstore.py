"""The public MDB-like key-value store API.

::

    ops = RecordingOps()            # or AtlasOps(runtime)
    db = MdbStore(ops)
    with db.write_txn() as txn:
        txn.put(1, "one")
        txn.put(2, "two")
    rd = db.read_txn()
    assert rd.get(1) == "one"

Each write transaction is one failure-atomic section; readers are
lock-free snapshots that may outlive later commits.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.mdb.btree import BPlusTree
from repro.mdb.mvcc import ReadTxn, TxnManager, WriteTxn
from repro.mdb.ops import PersistenceOps
from repro.mdb.pages import DEFAULT_PAGE_SIZE, PageAllocator


class MdbStore:
    """A copy-on-write, MVCC key-value store (the paper's MDB stand-in)."""

    def __init__(
        self, ops: PersistenceOps, page_size: int = DEFAULT_PAGE_SIZE
    ) -> None:
        self.ops = ops
        self.alloc = PageAllocator(ops, page_size)
        self.tree = BPlusTree(ops, self.alloc)
        self.txns = TxnManager(ops, self.alloc, self.tree)
        root = self.tree.create_empty()
        self.txns.initialise(root)

    # -- transactions ------------------------------------------------------

    def read_txn(self) -> ReadTxn:
        """A lock-free snapshot reader."""
        return self.txns.begin_read()

    @contextmanager
    def write_txn(self) -> Iterator[WriteTxn]:
        """The exclusive writer; commits (in one FASE) on clean exit."""
        with self.ops.fase():
            txn = self.txns.begin_write()
            try:
                yield txn
            except BaseException:
                txn.abort()
                raise
            txn.commit()

    # -- convenience single-op API ------------------------------------------

    def put(self, key: int, value: object) -> None:
        """One-put write transaction."""
        with self.write_txn() as txn:
            txn.put(key, value)

    def get(self, key: int) -> Optional[object]:
        """Snapshot point lookup."""
        return self.read_txn().get(key)

    def delete(self, key: int) -> bool:
        """One-delete write transaction."""
        with self.write_txn() as txn:
            return txn.delete(key)

    def count(self) -> int:
        """Number of live pairs (full traversal)."""
        return sum(1 for _ in self.read_txn().scan())

    def check(self) -> int:
        """Validate tree invariants; return the key count."""
        _i, root, _txn = self.txns.latest()
        return self.tree.check(root)
