"""MDB: a memory-mapped-database stand-in (copy-on-write B+-tree, MVCC).

The paper's case study (§IV-C) is MDB/LMDB — "a read-optimized key-value
store based on B+-tree … Readers start with the snapshot at the beginning
of a transaction and run in parallel with writers.  Writers use
copy-on-write policy."  This package reproduces that write behaviour:

- :mod:`repro.mdb.ops` — the persistence backend interface: the tree
  runs unchanged against a recording backend (harness workloads), or
  the Atlas runtime (durable, crash-recoverable).
- :mod:`repro.mdb.pages` — fixed-size pages in persistent memory with
  slot-level store/load.
- :mod:`repro.mdb.btree` — the copy-on-write B+-tree.
- :mod:`repro.mdb.mvcc` — dual meta pages, snapshot readers, a single
  writer; a write transaction is one FASE.
- :mod:`repro.mdb.kvstore` — the public ``MdbStore`` API.
- :mod:`repro.mdb.mtest` — the Mtest workload (inserts + traversals +
  deletions) behind Table II and Table III's mdb row.
"""

from repro.mdb.ops import PersistenceOps, RecordingOps, AtlasOps
from repro.mdb.pages import Page, PageAllocator
from repro.mdb.btree import BPlusTree
from repro.mdb.mvcc import TxnManager, ReadTxn, WriteTxn
from repro.mdb.kvstore import MdbStore
from repro.mdb.mtest import MtestWorkload

__all__ = [
    "PersistenceOps",
    "RecordingOps",
    "AtlasOps",
    "Page",
    "PageAllocator",
    "BPlusTree",
    "TxnManager",
    "ReadTxn",
    "WriteTxn",
    "MdbStore",
    "MtestWorkload",
]
