"""Persistence backends for the MDB store.

The B+-tree and transaction code are written once against
:class:`PersistenceOps`; the backend decides what a store/load *does*:

- :class:`RecordingOps` keeps a shadow memory and records the event
  stream — this is how ``MtestWorkload`` produces the machine-runnable
  streams the experiment harness consumes;
- :class:`AtlasOps` executes against a live
  :class:`~repro.atlas.runtime.AtlasRuntime`, making the store genuinely
  durable and crash-recoverable (used by the recovery tests and the
  ``examples/mdb_store.py`` example).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List

from repro.common.errors import ConfigurationError
from repro.common.events import Event, FaseBegin, FaseEnd, Load, Store, Work
from repro.nvram.memory import NVRAM_BASE


class PersistenceOps:
    """Backend protocol: allocation, data access, FASE bracketing."""

    def alloc(self, nbytes: int) -> int:
        """Reserve persistent memory; return its base address."""
        raise NotImplementedError

    def store(self, addr: int, value: object, size: int = 8) -> None:
        """Persistent store."""
        raise NotImplementedError

    def load(self, addr: int, size: int = 8) -> object:
        """Persistent load; returns the visible value."""
        raise NotImplementedError

    def work(self, amount: int) -> None:
        """Computation between memory operations."""
        raise NotImplementedError

    @contextmanager
    def fase(self) -> Iterator[None]:
        """A failure-atomic section (one write transaction)."""
        raise NotImplementedError
        yield  # pragma: no cover


class RecordingOps(PersistenceOps):
    """Shadow-memory backend that records the event stream.

    Loads are served from the shadow dict (and, optionally, recorded as
    events so the hardware-cache model sees read traffic).  Recording
    loads is configurable because read-heavy phases (MDB traversals)
    otherwise dominate event volume without affecting flush counts.
    """

    def __init__(
        self,
        base: int = NVRAM_BASE,
        record_loads: bool = True,
        load_sample: int = 4,
    ) -> None:
        if load_sample < 1:
            raise ConfigurationError("load_sample must be >= 1")
        self.events: List[Event] = []
        self.shadow: Dict[int, object] = {}
        self._next = base
        self.record_loads = record_loads
        self.load_sample = load_sample
        self._load_counter = 0

    def alloc(self, nbytes: int) -> int:
        if nbytes <= 0:
            raise ConfigurationError("allocation size must be positive")
        # Line-align so pages start on cache-line boundaries.
        addr = (self._next + 63) & ~63
        self._next = addr + nbytes
        return addr

    def store(self, addr: int, value: object, size: int = 8) -> None:
        self.shadow[addr] = value
        self.events.append(Store(addr, size, value))

    def load(self, addr: int, size: int = 8) -> object:
        if self.record_loads:
            self._load_counter += 1
            if self._load_counter % self.load_sample == 0:
                self.events.append(Load(addr, size))
        return self.shadow.get(addr)

    def work(self, amount: int) -> None:
        self.events.append(Work(amount))

    @contextmanager
    def fase(self) -> Iterator[None]:
        self.events.append(FaseBegin())
        try:
            yield
        finally:
            self.events.append(FaseEnd())

    def take_events(self) -> List[Event]:
        """Hand over the recorded stream (and reset the buffer)."""
        events, self.events = self.events, []
        return events


class AtlasOps(PersistenceOps):
    """Backend running on a live Atlas runtime (durable execution)."""

    def __init__(self, runtime, region_name: str = "mdb") -> None:
        self.runtime = runtime
        self.region = runtime.find_or_create_region(region_name)

    def alloc(self, nbytes: int) -> int:
        return self.region.alloc(nbytes)

    def store(self, addr: int, value: object, size: int = 8) -> None:
        self.runtime.store(addr, size, value)

    def load(self, addr: int, size: int = 8) -> object:
        return self.runtime.load(addr, size)

    def work(self, amount: int) -> None:
        self.runtime.work(amount)

    @contextmanager
    def fase(self) -> Iterator[None]:
        with self.runtime.fase():
            yield
