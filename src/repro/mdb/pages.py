"""Fixed-size pages in persistent memory.

MDB organises the B+-tree in pages; the copy-on-write policy operates at
page granularity ("writers use copy-on-write policy", §IV-B).  A page
here is a line-aligned block with a one-slot header and fixed 16-byte
entry slots; the slot layout means a page copy is a run of consecutive
same-line stores — the spatial write locality that makes Atlas's table
effective on MDB (its flush ratio of 0.30 reflects roughly three
combined stores per line) and that the software cache improves on by
also combining *across* the pages a transaction revisits.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.errors import ConfigurationError
from repro.mdb.ops import PersistenceOps

#: Default page size in bytes.  LMDB uses 4096; the reproduction scales
#: the page down with everything else so trees stay deep enough to
#: exercise multi-level copy-on-write at laptop problem sizes.
DEFAULT_PAGE_SIZE = 512

_HEADER_BYTES = 16
_SLOT_BYTES = 16


class Page:
    """A typed page handle: header + entry slots.

    The header slot stores ``(kind, nkeys)``; entry slot ``i`` stores an
    arbitrary tuple (leaf: ``(key, value)``; branch: ``(key, child)``).
    """

    __slots__ = ("ops", "addr", "capacity")

    LEAF = "leaf"
    BRANCH = "branch"
    META = "meta"

    def __init__(self, ops: PersistenceOps, addr: int, page_size: int) -> None:
        self.ops = ops
        self.addr = addr
        self.capacity = (page_size - _HEADER_BYTES) // _SLOT_BYTES

    # -- header -----------------------------------------------------------

    def write_header(self, kind: str, nkeys: int) -> None:
        """Store ``(kind, nkeys)`` in the header slot."""
        self.ops.store(self.addr, (kind, nkeys), _HEADER_BYTES)

    def read_header(self) -> Tuple[str, int]:
        """Load ``(kind, nkeys)``; a fresh page reads as ``("?", 0)``."""
        header = self.ops.load(self.addr, _HEADER_BYTES)
        if header is None:
            return ("?", 0)
        return header

    # -- slots --------------------------------------------------------------

    def slot_addr(self, i: int) -> int:
        """Byte address of entry slot ``i``."""
        return self.addr + _HEADER_BYTES + i * _SLOT_BYTES

    def write_slot(self, i: int, entry: object) -> None:
        """Store ``entry`` in slot ``i``."""
        if not 0 <= i < self.capacity:
            raise ConfigurationError(f"slot {i} out of range 0..{self.capacity - 1}")
        self.ops.store(self.slot_addr(i), entry, _SLOT_BYTES)

    def read_slot(self, i: int) -> object:
        """Load slot ``i``."""
        if not 0 <= i < self.capacity:
            raise ConfigurationError(f"slot {i} out of range 0..{self.capacity - 1}")
        return self.ops.load(self.slot_addr(i), _SLOT_BYTES)

    def read_entries(self, nkeys: int) -> List[object]:
        """Load the first ``nkeys`` entries."""
        return [self.read_slot(i) for i in range(nkeys)]

    def write_entries(self, kind: str, entries: List[object]) -> None:
        """Store a full page image: header plus every entry.

        Charges computation proportional to the page image (the compares
        and copies a real page write performs) so that timing reflects
        B+-tree work, not just raw stores.
        """
        if len(entries) > self.capacity:
            raise ConfigurationError(
                f"{len(entries)} entries exceed capacity {self.capacity}"
            )
        self.ops.work(2 + 2 * len(entries))
        self.write_header(kind, len(entries))
        for i, entry in enumerate(entries):
            self.write_slot(i, entry)

    def write_diff(
        self, kind: str, old: List[object], new: List[object]
    ) -> None:
        """Store only the slots that changed between two page images.

        This is the in-place edit path: a slot insert shifts the tail
        (the memmove a real B+-tree performs), an overwrite touches one
        slot, a child-pointer patch touches one slot.  The header is
        rewritten only when the key count changes.
        """
        if len(new) > self.capacity:
            raise ConfigurationError(
                f"{len(new)} entries exceed capacity {self.capacity}"
            )
        self.ops.work(2 + max(1, len(new) // 4))
        if len(old) != len(new):
            self.write_header(kind, len(new))
        for i, entry in enumerate(new):
            if i >= len(old) or old[i] != entry:
                self.write_slot(i, entry)


class PageAllocator:
    """Allocates pages from the backend (append-only, as in COW MDB)."""

    __slots__ = ("ops", "page_size", "allocated")

    def __init__(self, ops: PersistenceOps, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size < _HEADER_BYTES + 2 * _SLOT_BYTES:
            raise ConfigurationError(f"page size too small: {page_size}")
        self.ops = ops
        self.page_size = page_size
        self.allocated = 0

    def new_page(self) -> Page:
        """Allocate a fresh page."""
        addr = self.ops.alloc(self.page_size)
        self.allocated += 1
        return Page(self.ops, addr, self.page_size)

    def page_at(self, addr: int) -> Page:
        """A handle for an existing page."""
        return Page(self.ops, addr, self.page_size)

    @property
    def capacity_per_page(self) -> int:
        """Entry slots per page."""
        return (self.page_size - _HEADER_BYTES) // _SLOT_BYTES
