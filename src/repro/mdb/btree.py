"""The copy-on-write B+-tree.

Writers never modify a live page: every page on the root-to-leaf path of
an update is copied into a fresh page first (within one transaction the
copy is reused, so several puts touching the same leaf combine — the
write locality the software cache exploits).  Readers holding an old
root keep a consistent snapshot because old pages are never overwritten.

Layout: branch entries are ``(separator_key, child_addr)`` where the
child covers keys ``>= separator_key`` and the first separator is
``None`` (covers everything below the second); leaf entries are sorted
``(key, value)`` pairs.  Deletion is LMDB-style lazy: pages may
underflow, empty pages are unlinked, and a single-child branch root
collapses.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.mdb.ops import PersistenceOps
from repro.mdb.pages import Page, PageAllocator


class CowContext:
    """Per-write-transaction copy-on-write state."""

    __slots__ = ("copied", "writable", "pages_copied", "pages_created")

    def __init__(self) -> None:
        self.copied: Dict[int, int] = {}   # old page addr -> new page addr
        self.writable: set = set()         # pages owned by this transaction
        self.pages_copied = 0
        self.pages_created = 0


class BPlusTree:
    """COW B+-tree over a page allocator (see module docstring)."""

    def __init__(self, ops: PersistenceOps, allocator: PageAllocator) -> None:
        self.ops = ops
        self.alloc = allocator
        self.order = allocator.capacity_per_page

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def create_empty(self) -> int:
        """Allocate an empty leaf as the initial root; return its address."""
        page = self.alloc.new_page()
        page.write_entries(Page.LEAF, [])
        return page.addr

    # ------------------------------------------------------------------
    # Reads (work on any root snapshot, no COW)
    # ------------------------------------------------------------------

    def _read_page(self, addr: int) -> Tuple[str, List[object]]:
        page = self.alloc.page_at(addr)
        kind, nkeys = page.read_header()
        return kind, page.read_entries(nkeys)

    def get(self, root: int, key: int) -> Optional[object]:
        """Look ``key`` up under the given root snapshot."""
        addr = root
        while True:
            kind, entries = self._read_page(addr)
            self.ops.work(4 + len(entries) // 8)
            if kind == Page.LEAF:
                for k, v in entries:
                    if k == key:
                        return v
                return None
            addr = self._child_for(entries, key)

    def scan(self, root: int) -> Iterator[Tuple[int, object]]:
        """Yield all ``(key, value)`` pairs in key order (a traversal)."""
        kind, entries = self._read_page(root)
        self.ops.work(4)
        if kind == Page.LEAF:
            yield from entries
            return
        for _sep, child in entries:
            yield from self.scan(child)

    def depth(self, root: int) -> int:
        """Tree height (1 for a lone leaf)."""
        addr, d = root, 1
        while True:
            kind, entries = self._read_page(addr)
            if kind == Page.LEAF:
                return d
            addr = entries[0][1]
            d += 1

    @staticmethod
    def _child_for(entries: List[Tuple[Optional[int], int]], key: int) -> int:
        # Separators are sorted with entries[0][0] == None (minus infinity).
        lo, hi = 1, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if entries[mid][0] <= key:
                lo = mid + 1
            else:
                hi = mid
        return entries[lo - 1][1]

    # ------------------------------------------------------------------
    # Copy-on-write plumbing
    # ------------------------------------------------------------------

    def _cow_page(self, cow: CowContext, addr: int) -> Tuple[int, str, List[object]]:
        """Return a writable version of ``addr`` (copying on first touch).

        Pages this transaction already owns (its earlier copies and
        splits) are modified in place — that in-transaction reuse is the
        write combining the software cache exploits on MDB.
        """
        if addr in cow.writable:
            kind, entries = self._read_page(addr)
            return addr, kind, entries
        if addr in cow.copied:
            new_addr = cow.copied[addr]
            kind, entries = self._read_page(new_addr)
            return new_addr, kind, entries
        kind, entries = self._read_page(addr)
        page = self.alloc.new_page()
        page.write_entries(kind, entries)
        cow.copied[addr] = page.addr
        cow.writable.add(page.addr)
        cow.pages_copied += 1
        return page.addr, kind, entries

    def _write_page(self, addr: int, kind: str, entries: List[object]) -> None:
        # Full-image page writes: LMDB-style write amplification (page
        # memcpy on copy, spill-style rewrites on edit).  This is what
        # gives MDB its heavy same-line write multiplicity - the
        # combining opportunity Table III's mdb row measures.
        self.alloc.page_at(addr).write_entries(kind, entries)

    def _new_page(self, cow: CowContext, kind: str, entries: List[object]) -> int:
        page = self.alloc.new_page()
        page.write_entries(kind, entries)
        cow.writable.add(page.addr)
        cow.pages_created += 1
        return page.addr

    # ------------------------------------------------------------------
    # Writes (require a CowContext; return the new root)
    # ------------------------------------------------------------------

    def insert(self, root: int, key: int, value: object, cow: CowContext) -> int:
        """Insert or overwrite ``key``; return the new root address."""
        new_root, split = self._insert_rec(root, key, value, cow)
        if split is None:
            return new_root
        sep_key, right = split
        return self._new_page(
            cow, Page.BRANCH, [(None, new_root), (sep_key, right)]
        )

    def _insert_rec(
        self, addr: int, key: int, value: object, cow: CowContext
    ) -> Tuple[int, Optional[Tuple[int, int]]]:
        new_addr, kind, old = self._cow_page(cow, addr)
        self.ops.work(4 + len(old) // 8)
        entries = list(old)
        if kind == Page.LEAF:
            keys = [k for k, _ in entries]
            i = bisect_right(keys, key)
            if i and keys[i - 1] == key:
                entries[i - 1] = (key, value)       # overwrite in place
            else:
                entries.insert(i, (key, value))     # memmove of the tail
            if len(entries) <= self.order:
                self._write_page(new_addr, kind, entries)
                return new_addr, None
            mid = len(entries) // 2
            left, right = entries[:mid], entries[mid:]
            self._write_page(new_addr, kind, left)
            right_addr = self._new_page(cow, Page.LEAF, right)
            return new_addr, (right[0][0], right_addr)
        # Branch: descend, then patch the child pointer (and any split).
        child_idx = self._child_index(entries, key)
        child = entries[child_idx][1]
        new_child, split = self._insert_rec(child, key, value, cow)
        entries[child_idx] = (entries[child_idx][0], new_child)
        if split is not None:
            sep_key, right_addr = split
            entries.insert(child_idx + 1, (sep_key, right_addr))
        if len(entries) <= self.order:
            self._write_page(new_addr, kind, entries)
            return new_addr, None
        mid = len(entries) // 2
        left, right = entries[:mid], entries[mid:]
        self._write_page(new_addr, kind, left)
        # The right half's first separator becomes the push-up key and
        # its slot reverts to the minus-infinity sentinel.
        push_key = right[0][0]
        right = [(None, right[0][1])] + right[1:]
        right_addr = self._new_page(cow, Page.BRANCH, right)
        return new_addr, (push_key, right_addr)

    @staticmethod
    def _child_index(entries: List[Tuple[Optional[int], int]], key: int) -> int:
        lo, hi = 1, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if entries[mid][0] <= key:
                lo = mid + 1
            else:
                hi = mid
        return lo - 1

    def delete(self, root: int, key: int, cow: CowContext) -> Tuple[int, bool]:
        """Delete ``key``; return ``(new_root, found)``."""
        new_root, found, _empty = self._delete_rec(root, key, cow)
        # Collapse a single-child branch root (lazy rebalance).
        kind, entries = self._read_page(new_root)
        while kind == Page.BRANCH and len(entries) == 1:
            new_root = entries[0][1]
            kind, entries = self._read_page(new_root)
        return new_root, found

    def _delete_rec(
        self, addr: int, key: int, cow: CowContext
    ) -> Tuple[int, bool, bool]:
        new_addr, kind, old = self._cow_page(cow, addr)
        self.ops.work(4 + len(old) // 8)
        entries = list(old)
        if kind == Page.LEAF:
            for i, (k, _v) in enumerate(entries):
                if k == key:
                    del entries[i]
                    self._write_page(new_addr, kind, entries)
                    return new_addr, True, not entries
            return new_addr, False, not entries
        child_idx = self._child_index(entries, key)
        child = entries[child_idx][1]
        new_child, found, child_empty = self._delete_rec(child, key, cow)
        if child_empty and len(entries) > 1:
            del entries[child_idx]
            if child_idx == 0:
                # The new leftmost child covers minus infinity.
                entries[0] = (None, entries[0][1])
            subtree_empty = False
        else:
            entries[child_idx] = (entries[child_idx][0], new_child)
            # A branch whose only remaining child is empty is itself
            # empty; report it so ancestors can unlink the whole chain.
            subtree_empty = child_empty
        self._write_page(new_addr, kind, entries)
        return new_addr, found, subtree_empty

    # ------------------------------------------------------------------
    # Integrity checking (used by tests)
    # ------------------------------------------------------------------

    def check(self, root: int) -> int:
        """Validate ordering/structure invariants; return the key count."""
        count, _lo, _hi = self._check_rec(root, None, None)
        return count

    def _check_rec(
        self, addr: int, lo: Optional[int], hi: Optional[int]
    ) -> Tuple[int, Optional[int], Optional[int]]:
        kind, entries = self._read_page(addr)
        if kind == Page.LEAF:
            keys = [k for k, _ in entries]
            if keys != sorted(keys) or len(set(keys)) != len(keys):
                raise ConfigurationError(f"leaf {addr:#x} keys out of order")
            for k in keys:
                if (lo is not None and k < lo) or (hi is not None and k >= hi):
                    raise ConfigurationError(f"leaf key {k} outside [{lo},{hi})")
            return len(keys), None, None
        if not entries:
            raise ConfigurationError(f"empty branch page {addr:#x}")
        if entries[0][0] is not None:
            raise ConfigurationError(f"branch {addr:#x} missing -inf sentinel")
        seps = [k for k, _ in entries[1:]]
        if seps != sorted(seps):
            raise ConfigurationError(f"branch {addr:#x} separators out of order")
        total = 0
        for i, (sep, child) in enumerate(entries):
            child_lo = lo if sep is None else sep
            child_hi = entries[i + 1][0] if i + 1 < len(entries) else hi
            n, _, _ = self._check_rec(child, child_lo, child_hi)
            total += n
        return total, None, None
