"""MVCC: dual meta pages, snapshot readers, a single writer.

MDB's concurrency scheme (§IV-B): "Readers start with the snapshot at the
beginning of a transaction and run in parallel with writers.  Writers use
copy-on-write policy.  A reader always sees a valid B+-tree without
having to acquire locks.  A write transaction is required to acquire an
exclusive lock."

Like LMDB, two meta pages alternate: a committing writer publishes the
new root by writing the *other* meta page with a higher transaction id;
readers pick the meta with the highest id.  Because pages are never
overwritten (append-only COW), a reader's root stays valid for as long
as it needs it.  The whole write transaction — COW page writes plus the
meta flip — is one FASE, which is exactly what makes MDB's transactions
durable on the Atlas runtime and what produces the paper's "durable
FASEs" count.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.common.errors import SimulationError
from repro.mdb.btree import BPlusTree, CowContext
from repro.mdb.ops import PersistenceOps
from repro.mdb.pages import Page, PageAllocator


class TxnManager:
    """Owns the meta pages and transaction identity."""

    __slots__ = ("ops", "alloc", "tree", "meta", "_writer_active")

    def __init__(
        self, ops: PersistenceOps, alloc: PageAllocator, tree: BPlusTree
    ) -> None:
        self.ops = ops
        self.alloc = alloc
        self.tree = tree
        self.meta: Tuple[Page, Page] = (alloc.new_page(), alloc.new_page())
        self._writer_active = False

    def initialise(self, root: int) -> None:
        """Write the initial meta pages (txn ids 0 and 1)."""
        with self.ops.fase():
            self.meta[0].write_header(Page.META, 0)
            self.meta[0].write_slot(0, (root, 0))
            self.meta[1].write_header(Page.META, 0)
            self.meta[1].write_slot(0, (root, 1))

    def latest(self) -> Tuple[int, int, int]:
        """Return ``(meta_index, root, txn_id)`` of the newest snapshot."""
        snaps = []
        for i, page in enumerate(self.meta):
            payload = page.read_slot(0)
            if payload is None:
                raise SimulationError("meta pages not initialised")
            root, txn_id = payload
            snaps.append((txn_id, root, i))
        txn_id, root, i = max(snaps)
        return i, root, txn_id

    def begin_read(self) -> "ReadTxn":
        """Open a lock-free snapshot reader."""
        _i, root, txn_id = self.latest()
        return ReadTxn(self.tree, root, txn_id)

    def begin_write(self) -> "WriteTxn":
        """Open the (single) writer; raises if one is already open."""
        if self._writer_active:
            raise SimulationError("MDB allows a single write transaction")
        self._writer_active = True
        i, root, txn_id = self.latest()
        return WriteTxn(self, root, txn_id + 1, other_meta=1 - i)

    def _commit(self, txn: "WriteTxn") -> None:
        meta = self.meta[txn.other_meta]
        meta.write_slot(0, (txn.root, txn.txn_id))
        self._writer_active = False

    def _abort(self) -> None:
        self._writer_active = False


class ReadTxn:
    """A snapshot read transaction (no locks, runs against a fixed root)."""

    __slots__ = ("tree", "root", "txn_id")

    def __init__(self, tree: BPlusTree, root: int, txn_id: int) -> None:
        self.tree = tree
        self.root = root
        self.txn_id = txn_id

    def get(self, key: int) -> Optional[object]:
        """Point lookup under this snapshot."""
        return self.tree.get(self.root, key)

    def scan(self):
        """Full traversal under this snapshot."""
        return self.tree.scan(self.root)


class WriteTxn:
    """The exclusive write transaction (copy-on-write, one FASE)."""

    __slots__ = ("manager", "root", "txn_id", "other_meta", "cow",
                 "puts", "deletes", "_done")

    def __init__(
        self, manager: TxnManager, root: int, txn_id: int, other_meta: int
    ) -> None:
        self.manager = manager
        self.root = root
        self.txn_id = txn_id
        self.other_meta = other_meta
        self.cow = CowContext()
        self.puts = 0
        self.deletes = 0
        self._done = False

    def put(self, key: int, value: object) -> None:
        """Insert or overwrite a pair (COW along the path)."""
        self._check_open()
        self.root = self.manager.tree.insert(self.root, key, value, self.cow)
        self.puts += 1

    def get(self, key: int) -> Optional[object]:
        """Read through the writer's own uncommitted root."""
        self._check_open()
        return self.manager.tree.get(self.root, key)

    def delete(self, key: int) -> bool:
        """Delete a pair; returns whether the key existed."""
        self._check_open()
        self.root, found = self.manager.tree.delete(self.root, key, self.cow)
        if found:
            self.deletes += 1
        return found

    def commit(self) -> None:
        """Publish the new root via the alternate meta page."""
        self._check_open()
        self.manager._commit(self)
        self._done = True

    def abort(self) -> None:
        """Drop the transaction; COW pages become garbage."""
        self._check_open()
        self.manager._abort()
        self._done = True

    def _check_open(self) -> None:
        if self._done:
            raise SimulationError("transaction already finished")
