"""The user-facing Atlas runtime.

:class:`AtlasRuntime` is the library's programmable front door — what a
downstream user writes persistent programs against::

    rt = AtlasRuntime(technique="SC")
    region = rt.find_or_create_region("mydata")
    node = rt.alloc(64)
    with rt.fase():
        rt.store(node, value=42)
        rt.set_root(region, node)
    ...
    state = rt.crash()                 # simulated power failure
    report = recover(state, rt.layout())   # -> consistent NVRAM image

Every persistent store inside a FASE is undo-logged first (old value made
durable before the new value can reach NVRAM), data flushes are managed
by the chosen technique (ER/LA/AT/SC/SC-offline — the object of the
paper), and the FASE end orders *data drain before commit record*.

Multi-threaded programs create one runtime per simulated thread over a
shared :class:`~repro.nvram.machine.Machine` via :meth:`AtlasRuntime.for_machine`
(software caches, logs and FASEs are all per-thread, exactly as in the
paper's design).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.atlas.fase import FaseLock, FaseManager
from repro.atlas.log import UndoLog
from repro.atlas.region import DEFAULT_REGION_SIZE, PersistentRegion, RegionManager
from repro.cache.spec import technique_factory
from repro.common.errors import SimulationError
from repro.nvram.failure import CrashedState
from repro.nvram.machine import Machine, MachineConfig, MachineSession


#: Size of each thread's undo-log region.
LOG_REGION_SIZE = 4 * 1024 * 1024


class AtlasLayout:
    """Address-layout facts recovery needs (regions, per-thread logs)."""

    __slots__ = ("regions", "log_regions")

    def __init__(self, regions: RegionManager, log_regions: list) -> None:
        self.regions = regions
        self.log_regions = list(log_regions)


class AtlasRuntime:
    """One simulated thread's FASE runtime (see module docstring)."""

    def __init__(
        self,
        technique: str = "SC",
        machine: Optional[Machine] = None,
        regions: Optional[RegionManager] = None,
        thread_id: int = 0,
        record_trace: bool = False,
        **technique_options,
    ) -> None:
        if machine is None:
            machine = Machine(MachineConfig(track_values=True))
        if not machine.config.track_values:
            raise SimulationError(
                "AtlasRuntime needs a machine with track_values=True "
                "(undo logging reads old values)"
            )
        self.machine = machine
        self.regions = regions if regions is not None else RegionManager()
        factory = technique_factory(technique, **technique_options)
        self.technique = factory(thread_id)
        self.session: MachineSession = machine.session(
            self.technique, thread_id, record_trace=record_trace
        )
        self.fases = FaseManager(self.session)
        log_region = self.regions.find_or_create(
            f"__atlas_log_{thread_id}", LOG_REGION_SIZE
        )
        self.log = UndoLog(log_region, self.session)
        self._thread_id = thread_id
        self._all_log_regions = [log_region]

    @classmethod
    def for_machine(
        cls,
        machine: Machine,
        regions: RegionManager,
        technique: str,
        thread_id: int,
        **technique_options,
    ) -> "AtlasRuntime":
        """A per-thread runtime sharing ``machine`` and ``regions``."""
        return cls(
            technique=technique,
            machine=machine,
            regions=regions,
            thread_id=thread_id,
            **technique_options,
        )

    # -- regions & allocation --------------------------------------------

    def find_or_create_region(
        self, name: str, size: int = DEFAULT_REGION_SIZE
    ) -> PersistentRegion:
        """Open (or create) a named persistent region."""
        return self.regions.find_or_create(name, size)

    def alloc(self, nbytes: int, region: Optional[PersistentRegion] = None) -> int:
        """Allocate persistent memory (defaults to the 'heap' region)."""
        if region is None:
            region = self.regions.find_or_create("heap")
        return region.alloc(nbytes)

    def set_root(self, region: PersistentRegion, addr: int) -> None:
        """Durably point the region's root slot at ``addr``."""
        self.store(region.root_addr, value=addr)

    def get_root(self, region: PersistentRegion) -> object:
        """Read the region's root pointer."""
        return self.load(region.root_addr)

    # -- FASEs -------------------------------------------------------------

    @contextmanager
    def fase(self) -> Iterator[None]:
        """``with rt.fase(): ...`` — a failure-atomic section.

        On exit of the *outermost* section: the technique drains its
        buffered lines (data durable), then the commit record is logged
        and flushed — the Atlas ordering that makes recovery sound.
        """
        self.fases.begin()
        fase_id = self.fases.current_id
        if self.fases.depth == 1:
            self.log.on_fase_begin()
        try:
            yield
        finally:
            if self.fases.depth == 1:
                # Order: data drain happens inside fase_end (the
                # technique's on_fase_end), then the commit record.
                self.fases.end()
                self.log.commit(fase_id)
            else:
                self.fases.end()

    def lock(self, name: str) -> FaseLock:
        """A lock whose critical section is a FASE (Atlas's model)."""
        return FaseLock(name, self.fases)

    # -- data access ---------------------------------------------------------

    def store(self, addr: int, size: int = 8, value: object = None) -> None:
        """A persistent store; undo-logged when inside a FASE."""
        if self.fases.in_fase:
            old = self.machine.read_current(addr)
            self.log.log_store(self.fases.current_id, addr, old)
        self.session.store(addr, size, value)

    def load(self, addr: int, size: int = 8) -> object:
        """A persistent load; returns the currently visible value."""
        return self.session.load(addr, size)

    def work(self, amount: int) -> None:
        """Computation not touching persistent state."""
        self.session.work(amount)

    # -- lifecycle ---------------------------------------------------------------

    def layout(self) -> AtlasLayout:
        """The layout facts recovery needs."""
        log_regions = [
            r for r in self.regions if r.name.startswith("__atlas_log_")
        ]
        return AtlasLayout(self.regions, log_regions)

    def crash(self) -> CrashedState:
        """Simulate a power failure *now*; return the durable image.

        Everything dirty in the hardware cache is lost; flushed data and
        log entries survive.  The runtime is unusable afterwards.
        """
        self.machine._crash()
        return self.machine.crashed_state

    def finish(self) -> None:
        """Orderly shutdown: drain remaining buffered lines."""
        self.session.finish()

    @property
    def stats(self):
        """Live counters of this runtime's simulated thread."""
        return self.session.stats
