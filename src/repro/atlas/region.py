"""Persistent regions: named, durable address ranges with an allocator.

Atlas programs place durable data in persistent regions (the paper's
emulation backs them with tmpfs and maps them at process start, §IV-A).
Here a region is a reserved slice of the simulated NVRAM address space
with a bump allocator and a *root address* — the well-known location a
recovering process reads first to find its data structures.

Region metadata (name → base address) is itself deterministic: regions
are carved out of NVRAM in creation order with fixed alignment, so a
recovery run that re-creates regions in the same order sees the same
addresses.  (Real Atlas persists a region table; the deterministic
layout plays that role without adding an orthogonal serialisation
subsystem to the reproduction.)
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.errors import ConfigurationError
from repro.common.geometry import CACHE_LINE_SIZE, align_up
from repro.nvram.memory import NVRAM_BASE

#: Default region size: 16 MiB of simulated NVRAM.
DEFAULT_REGION_SIZE = 16 * 1024 * 1024


class PersistentRegion:
    """A named slice of NVRAM with a bump allocator and a root slot.

    The first cache line of the region is reserved: offset 0 holds the
    root address.
    """

    __slots__ = ("name", "base", "size", "_next")

    def __init__(self, name: str, base: int, size: int) -> None:
        if base < NVRAM_BASE:
            raise ConfigurationError("regions must live in NVRAM")
        self.name = name
        self.base = base
        self.size = size
        self._next = base + CACHE_LINE_SIZE  # line 0 reserved for the root

    @property
    def root_addr(self) -> int:
        """Address of the region's root pointer slot."""
        return self.base

    @property
    def end(self) -> int:
        """One past the region's last byte."""
        return self.base + self.size

    def alloc(self, nbytes: int, line_aligned: bool = True) -> int:
        """Reserve ``nbytes``; return the base address.

        Allocations are cache-line aligned by default, the layout the
        micro-benchmarks and MDB use (one node per line keeps flush
        accounting legible).
        """
        if nbytes <= 0:
            raise ConfigurationError(f"allocation size must be positive: {nbytes}")
        addr = align_up(self._next, CACHE_LINE_SIZE) if line_aligned else self._next
        if addr + nbytes > self.end:
            raise ConfigurationError(
                f"region {self.name!r} exhausted "
                f"({addr + nbytes - self.base} > {self.size} bytes)"
            )
        self._next = addr + nbytes
        return addr

    def contains(self, addr: int) -> bool:
        """True when ``addr`` falls inside this region."""
        return self.base <= addr < self.end

    def __repr__(self) -> str:
        used = self._next - self.base
        return f"PersistentRegion({self.name!r}, base={self.base:#x}, used={used})"


class RegionManager:
    """Deterministic carving of NVRAM into named regions."""

    __slots__ = ("_regions", "_next_base")

    def __init__(self, base: int = NVRAM_BASE) -> None:
        self._regions: Dict[str, PersistentRegion] = {}
        self._next_base = base

    def find_or_create(
        self, name: str, size: int = DEFAULT_REGION_SIZE
    ) -> PersistentRegion:
        """Return the region called ``name``, creating it if needed.

        Re-creation (same names, same order) after a crash yields the
        same base addresses — the property recovery depends on.
        """
        region = self._regions.get(name)
        if region is not None:
            return region
        if size <= 0:
            raise ConfigurationError("region size must be positive")
        region = PersistentRegion(name, self._next_base, size)
        self._regions[name] = region
        self._next_base = align_up(self._next_base + size, CACHE_LINE_SIZE)
        return region

    def get(self, name: str) -> Optional[PersistentRegion]:
        """Look up a region without creating it."""
        return self._regions.get(name)

    def __iter__(self):
        return iter(self._regions.values())
