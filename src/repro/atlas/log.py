"""The Atlas undo log.

Failure atomicity ("upon a system failure, either all or none of the
updates in a FASE are visible in NVRAM", §II-A) needs more than flushing:
it needs the *old* value of every location a FASE modifies to be durable
before the new value can possibly reach NVRAM.  Atlas uses undo logging
with this write ordering:

1. first in-FASE store to a location → append ``(fase, addr, old)`` to
   the log and **flush the log entry** before the data store executes;
2. at the FASE end → flush all the FASE's data (the technique's drain),
   *then* append and flush a commit record.

Recovery (see :mod:`repro.atlas.recovery`) undoes every logged entry of
FASEs with no commit record, newest first.

Log records live in their own persistent region at fixed 32-byte slots,
so a post-crash scan can walk them in append order.  Record payloads are
Python tuples (the simulated NVRAM stores objects per address); the
structure — not the byte encoding — is what the reproduction needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.atlas.region import PersistentRegion

#: Spacing of log slots.  Two per cache line: log appends hit each line
#: twice, matching Atlas's packed log buffers.
LOG_SLOT_BYTES = 32

#: Record kinds.
KIND_UNDO = "undo"
KIND_COMMIT = "commit"


@dataclass(frozen=True)
class LogRecord:
    """One undo-log record as written to (simulated) NVRAM."""

    kind: str              # KIND_UNDO or KIND_COMMIT
    fase_id: int
    addr: int = 0          # undo records only
    old_value: object = None

    def as_payload(self) -> tuple:
        """The tuple stored at the record's slot address."""
        return (self.kind, self.fase_id, self.addr, self.old_value)

    @staticmethod
    def from_payload(payload: object) -> Optional["LogRecord"]:
        """Parse a slot payload back into a record (None if not one)."""
        if (
            isinstance(payload, tuple)
            and len(payload) == 4
            and payload[0] in (KIND_UNDO, KIND_COMMIT)
        ):
            return LogRecord(payload[0], payload[1], payload[2], payload[3])
        return None


class UndoLog:
    """Append-only undo log in a persistent region.

    The log writes through a machine session like any other persistent
    data, but its entries are flushed eagerly (Atlas cannot defer them:
    an unflushed undo entry is a torn FASE waiting to happen).  The
    eager log flushes go through the session's technique-independent
    flush path and are counted separately from data flushes.
    """

    __slots__ = ("region", "session", "_logged", "appended", "commits")

    def __init__(self, region: PersistentRegion, session) -> None:
        self.region = region
        self.session = session
        self._logged: set = set()      # addrs logged in the current FASE
        self.appended = 0
        self.commits = 0

    def _append(self, record: LogRecord, category: str = "log") -> None:
        slot = self.region.alloc(LOG_SLOT_BYTES, line_aligned=False)
        # Log stores bypass the data technique (Atlas's table tracks
        # program data, not the log) and are flushed eagerly: the entry
        # must be durable before the guarded store may reach NVRAM.
        self.session.store_unmanaged(slot, LOG_SLOT_BYTES, value=record.as_payload())
        port = self.session._ctx.port
        port.flush_async(slot >> 6, category=category)
        self.appended += 1

    def on_fase_begin(self) -> None:
        """Reset the logged-address set for a fresh outermost FASE."""
        self._logged.clear()

    def log_store(self, fase_id: int, addr: int, old_value: object) -> None:
        """Log the old value before the first in-FASE store to ``addr``."""
        if addr in self._logged:
            return
        self._logged.add(addr)
        self._append(LogRecord(KIND_UNDO, fase_id, addr, old_value))

    def commit(self, fase_id: int) -> None:
        """Seal a FASE: its data is durable, write the commit record.

        The commit record flushes under its own category so crash-site
        enumeration can distinguish it from undo appends; the machine
        counts both into ``log_flushes``.
        """
        self._append(LogRecord(KIND_COMMIT, fase_id), category="commit")
        self.commits += 1
        self._logged.clear()

    # -- post-crash scanning (class-level: no live log object exists) ----

    @staticmethod
    def scan(nvram: dict, region_base: int, region_size: int) -> Iterator[LogRecord]:
        """Walk the log records found in a post-crash NVRAM image."""
        addr = region_base + 64  # first line of the region holds the root
        end = region_base + region_size
        while addr < end:
            record = LogRecord.from_payload(nvram.get(addr))
            if record is None:
                break  # append-only: the first hole is the log's end
            yield record
            addr += LOG_SLOT_BYTES
