"""Atlas-style FASE runtime on the simulated NVRAM machine.

Atlas [Chakrabarti, Boehm & Bhandari, OOPSLA'14] is the system the paper
builds its software cache into: lock-delimited *failure-atomic sections*
(FASEs), undo logging for atomicity, and cache-line write-back for
durability.  This package reproduces that runtime on the simulator:

- :mod:`repro.atlas.region` — named persistent regions with a root
  pointer and an allocator (durable data placement).
- :mod:`repro.atlas.log` — the undo log: old values are logged (and the
  log entry made durable) before the first in-FASE modification of a
  location; a commit record seals the FASE after its data is flushed.
- :mod:`repro.atlas.fase` — FASE bracketing, nesting and the lock-based
  entry points Atlas instruments.
- :mod:`repro.atlas.runtime` — :class:`AtlasRuntime`, the user-facing
  object tying a machine session, a technique, the log and regions
  together.
- :mod:`repro.atlas.recovery` — post-crash recovery: roll back
  uncommitted FASEs from the undo log and hand back a consistent heap.

This is where the *correctness* side of the paper lives: the flush
techniques exist so that, at any crash point, the log + flushed data
suffice to reconstruct a consistent state.  The test suite crashes the
machine at arbitrary store counts and asserts recovery round-trips.
"""

from repro.atlas.region import PersistentRegion, RegionManager
from repro.atlas.log import UndoLog, LogRecord
from repro.atlas.fase import FaseManager, FaseLock
from repro.atlas.runtime import AtlasRuntime
from repro.atlas.recovery import recover, RecoveryReport

__all__ = [
    "PersistentRegion",
    "RegionManager",
    "UndoLog",
    "LogRecord",
    "FaseManager",
    "FaseLock",
    "AtlasRuntime",
    "recover",
    "RecoveryReport",
]
