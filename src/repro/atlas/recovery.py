"""Post-crash recovery: roll uncommitted FASEs back from the undo log.

After a failure, NVRAM holds (a) every value that was flushed or evicted
before the crash and (b) the undo log, whose entries were made durable
*before* the stores they guard.  Recovery restores the FASE guarantee —
all-or-nothing — by undoing, newest first, every logged store of a FASE
that has no commit record.

Soundness argument (tested by crash-injection in the suite):

- a committed FASE's data was drained *before* its commit record was
  flushed, so committed data is fully present — undoing nothing is
  correct;
- an uncommitted FASE's store can only be in NVRAM if *its undo entry
  is too* (log-before-data ordering), so every leaked value has its
  old value available to restore;
- undoing newest-first replays nested/overwritten locations correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.atlas.log import KIND_COMMIT, KIND_UNDO, LogRecord, UndoLog
from repro.common.errors import RecoveryError
from repro.nvram.failure import CrashedState


@dataclass
class RecoveryReport:
    """What recovery found and did."""

    committed_fases: Set[int] = field(default_factory=set)
    rolled_back_fases: Set[int] = field(default_factory=set)
    undone_stores: int = 0
    log_records: int = 0
    #: The consistent NVRAM image (addr -> value) after rollback.
    nvram: Dict[int, object] = field(default_factory=dict)

    def read(self, addr: int, default: object = None) -> object:
        """Read from the recovered image."""
        return self.nvram.get(addr, default)


def recover(state: CrashedState, layout) -> RecoveryReport:
    """Recover a crashed machine's NVRAM image to a consistent state.

    Parameters
    ----------
    state:
        The durable image a crash left behind
        (:class:`~repro.nvram.failure.CrashedState`).
    layout:
        An :class:`~repro.atlas.runtime.AtlasLayout` (or anything with a
        ``log_regions`` list of objects carrying ``base`` and ``size``).

    Returns
    -------
    RecoveryReport
        Rollback statistics plus the repaired image.  Raises
        :class:`~repro.common.errors.RecoveryError` if the log itself is
        malformed (which the write ordering should make impossible).
    """
    report = RecoveryReport(nvram=dict(state.nvram))
    for region in layout.log_regions:
        records: List[LogRecord] = list(
            UndoLog.scan(report.nvram, region.base, region.size)
        )
        report.log_records += len(records)
        committed = {r.fase_id for r in records if r.kind == KIND_COMMIT}
        report.committed_fases |= committed
        # Undo newest-first so a location modified by several uncommitted
        # FASEs (nested retries) ends at its oldest durable value.
        for record in reversed(records):
            if record.kind != KIND_UNDO:
                continue
            if record.fase_id in committed:
                continue
            report.rolled_back_fases.add(record.fase_id)
            if record.old_value is None:
                # The location did not exist before the FASE: remove it.
                report.nvram.pop(record.addr, None)
            else:
                report.nvram[record.addr] = record.old_value
            report.undone_stores += 1
    overlap = report.committed_fases & report.rolled_back_fases
    if overlap:
        raise RecoveryError(
            f"FASEs both committed and rolled back: {sorted(overlap)[:5]}"
        )
    return report
