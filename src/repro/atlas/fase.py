"""FASE bracketing: nesting, ids, and the lock-based entry points.

Atlas derives FASEs from critical sections: "the programming model
requires that all the codes that violate a program invariant be grouped
into a failure-atomic section", and in practice the LLVM pass instruments
lock acquire/release (§III-C, "Compiler Support").  A FASE "is more
general than transactions because of nesting" (§V): persistence is only
guaranteed when the *outermost* section closes.

:class:`FaseManager` tracks the nesting and drives the machine session;
:class:`FaseLock` is the lock-shaped front end — acquiring enters a FASE,
releasing leaves it — so ported lock-based code reads naturally.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.common.errors import SimulationError
from repro.nvram.machine import MachineSession


class FaseManager:
    """Tracks FASE nesting for one runtime thread."""

    __slots__ = ("session", "completed")

    def __init__(self, session: MachineSession) -> None:
        self.session = session
        self.completed = 0

    @property
    def depth(self) -> int:
        """Current nesting depth (0 = outside any FASE)."""
        return self.session.fase_depth

    @property
    def in_fase(self) -> bool:
        """True inside a FASE at any depth."""
        return self.session.fase_depth > 0

    @property
    def current_id(self) -> int:
        """Unique id of the current outermost FASE (-1 outside)."""
        return self.session.current_fase_id

    def begin(self) -> None:
        """Enter a (possibly nested) failure-atomic section."""
        self.session.fase_begin()

    def end(self) -> None:
        """Leave the innermost open section."""
        if self.session.fase_depth == 0:
            raise SimulationError("FASE end without a matching begin")
        self.session.fase_end()
        if self.session.fase_depth == 0:
            self.completed += 1

    @contextmanager
    def fase(self) -> Iterator[None]:
        """``with fases.fase(): ...`` — bracketed section."""
        self.begin()
        try:
            yield
        finally:
            self.end()


class FaseLock:
    """A lock whose critical section is a FASE (Atlas's model).

    The simulation is cooperative (one OS thread drives all simulated
    threads), so no real mutual exclusion is needed; the lock checks
    usage discipline and brackets the FASE.  Locks may nest — Atlas
    builds its FASEs from the program's full outermost critical
    sections.
    """

    __slots__ = ("name", "manager", "_held")

    def __init__(self, name: str, manager: FaseManager) -> None:
        self.name = name
        self.manager = manager
        self._held = 0

    def acquire(self) -> None:
        """Take the lock, entering a failure-atomic section."""
        self._held += 1
        self.manager.begin()

    def release(self) -> None:
        """Release the lock, leaving the section."""
        if self._held == 0:
            raise SimulationError(f"lock {self.name!r} released but not held")
        self._held -= 1
        self.manager.end()

    @property
    def held(self) -> bool:
        """True while this lock is held."""
        return self._held > 0

    def __enter__(self) -> "FaseLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()
